package search

import (
	"context"
	"math/bits"
	"sort"

	"newslink/internal/index"
)

// Block-Max MaxScore evaluation.
//
// TopKMaxScore prunes at whole-list granularity: once the suffix bound of
// the remaining terms drops below the running threshold, new documents stop
// being admitted — but every posting of every term is still decoded and
// inspected. The block layout (internal/index) stores a summary (last doc
// ID, max TF) per 128-posting block, which yields a much tighter per-block
// upper bound: qw·MaxWeight(blockMaxTF, df) + suffixBound[i+1]. A block
// whose bound cannot reach the threshold and that contains no already-
// accumulated document is skipped without being decoded — on a DiskIndex
// its bytes are never read at all.
//
// The result is provably rank- and score-identical to TopK (exact TAAT) and
// TopKMaxScore — see DESIGN.md §10 for the safety argument; the short form:
// a document's first-appearance block is never skipped unless its total
// score is strictly below the final k-th score; an accumulated document is
// rescored (hasAcc forces the decode) until its partial score plus every
// remaining term bound falls strictly below the threshold, after which its
// total provably cannot reach the final k-th score either; and winners'
// scores are summed in the same term order as TopKMaxScore, so the
// surviving top k is bitwise identical.

// bmTerm is one query term prepared for block-max evaluation. Unlike
// termInfo it carries no postings — only directory-level summaries — so
// preparation decodes nothing.
type bmTerm struct {
	term  string
	qw    float64
	df    int
	bound float64
}

// prepareBlockTerms orders the matching query terms by decreasing score
// bound (ties by term for determinism) using only cursor summaries. The
// second result is the total number of postings across the terms.
func prepareBlockTerms(idx index.Source, s Scorer, q Query) ([]bmTerm, int) {
	terms := make([]bmTerm, 0, len(q))
	total := 0
	for term, qw := range q {
		c := idx.TermCursor(term)
		if c == nil {
			continue
		}
		df := c.Count()
		maxTF := float64(c.MaxTF())
		index.ReleaseCursor(c)
		if df == 0 {
			continue
		}
		total += df
		terms = append(terms, bmTerm{term, qw, df, qw * s.MaxWeight(maxTF, df)})
	}
	if len(terms) == 0 {
		return nil, 0
	}
	sortBMTerms(terms)
	return terms, total
}

// sortBMTerms applies the canonical execution order: decreasing bound,
// ties by term for determinism.
func sortBMTerms(terms []bmTerm) {
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].bound != terms[j].bound {
			return terms[i].bound > terms[j].bound
		}
		return terms[i].term < terms[j].term
	})
}

// bmSuffixBounds is suffixBounds over block-max terms.
func bmSuffixBounds(terms []bmTerm) []float64 {
	out := make([]float64, len(terms)+1)
	for i := len(terms) - 1; i >= 0; i-- {
		out[i] = out[i+1] + terms[i].bound
	}
	return out
}

// TopKBlockMax evaluates the query with block-max pruning. Results equal
// TopK exactly.
func TopKBlockMax(idx index.Source, s Scorer, q Query, k int) []Hit {
	hits, _ := TopKBlockMaxContext(context.Background(), idx, s, q, k)
	return hits
}

// TopKBlockMaxContext is TopKBlockMax with cooperative cancellation. Unlike
// Postings-based traversal — where a disk read failure looks like an absent
// term — block decode/IO errors surface as errors.
func TopKBlockMaxContext(ctx context.Context, idx index.Source, s Scorer, q Query, k int) ([]Hit, error) {
	hits, _, err := TopKBlockMaxStats(ctx, idx, s, q, k)
	return hits, err
}

// TopKBlockMaxStats is TopKBlockMaxContext reporting retrieval statistics,
// including how many blocks the bound pruned without decoding.
func TopKBlockMaxStats(ctx context.Context, idx index.Source, s Scorer, q Query, k int) ([]Hit, RetrievalStats, error) {
	var st RetrievalStats
	st.Shards = 1
	if k <= 0 || len(q) == 0 {
		return nil, st, ctx.Err()
	}
	terms, total := prepareBlockTerms(idx, s, q)
	if terms == nil {
		return nil, st, ctx.Err()
	}
	st.Terms = len(terms)
	st.Postings = total
	suffixBound := bmSuffixBounds(terms)
	hits, shardST, err := blockMaxAccumulate(ctx, idx, s, terms, suffixBound, k, nil)
	if err != nil {
		return nil, st, err
	}
	st.add(shardST)
	return hits, st, nil
}

// TopKBlockMaxSharded is the block-max counterpart of TopKMaxScoreSharded:
// the document space is split into contiguous DocID ranges and every shard
// runs the block-max loop with its own cursors (cursors are single-owner;
// index sources are immutable, so any number may traverse concurrently).
func TopKBlockMaxSharded(ctx context.Context, idx index.Source, s Scorer, q Query, k, shards int) ([]Hit, error) {
	hits, _, err := TopKBlockMaxShardedStats(ctx, idx, s, q, k, shards)
	return hits, err
}

// TopKBlockMaxShardedStats is TopKBlockMaxSharded reporting retrieval
// statistics aggregated across shards.
func TopKBlockMaxShardedStats(ctx context.Context, idx index.Source, s Scorer, q Query, k, shards int) ([]Hit, RetrievalStats, error) {
	var st RetrievalStats
	st.Shards = max(shards, 1)
	if k <= 0 || len(q) == 0 {
		return nil, st, ctx.Err()
	}
	terms, total := prepareBlockTerms(idx, s, q)
	if terms == nil {
		return nil, st, ctx.Err()
	}
	st.Terms = len(terms)
	st.Postings = total
	suffixBound := bmSuffixBounds(terms)
	hits, fanST, err := blockMaxFanout(ctx, idx, s, terms, suffixBound, k, shards)
	if err != nil {
		return nil, st, err
	}
	st.add(fanST)
	st.Shards = fanST.Shards
	return hits, st, nil
}

// bmAcc is a dense score accumulator over one contiguous DocID range
// [lo, hi). Each blockMaxAccumulate call owns such a range (the whole
// index, or one shard), so plain array indexing replaces the map the
// TAAT paths use — the accumulator's memory is proportional to the range,
// comparable to the index's own per-document overhead, and every
// per-posting operation is O(1) without hashing. Two bitmaps ride along:
// seen marks documents with an accumulator entry; viable marks the subset
// that can still reach the top k, which is what the per-block skip
// decision consults.
//
// Accumulators are pooled across requests (scratch.go): obtain one with
// acquireBMAcc and return it with release once the winners are copied out.
// h is the request-owned top-k heap scratch shared by refresh and
// selectTop, recycled with the accumulator.
type bmAcc struct {
	lo     index.DocID
	score  []float64
	seen   []uint64
	viable []uint64
	n      int // number of seen documents
	h      hitHeap
}

func (a *bmAcc) isSeen(d index.DocID) bool {
	i := uint32(d - a.lo)
	return a.seen[i>>6]&(1<<(i&63)) != 0
}

// admit marks a newly seen document; new documents start viable.
func (a *bmAcc) admit(d index.DocID) {
	i := uint32(d - a.lo)
	a.seen[i>>6] |= 1 << (i & 63)
	a.viable[i>>6] |= 1 << (i & 63)
	a.n++
}

func (a *bmAcc) add(d index.DocID, w float64) {
	a.score[d-a.lo] += w
}

// anyViable reports whether any viable document lies in [from, to], both
// clamped to the accumulator's range.
func (a *bmAcc) anyViable(from, to index.DocID) bool {
	if to < a.lo || a.n == 0 {
		return false
	}
	lo := uint32(0)
	if from > a.lo {
		lo = uint32(from - a.lo)
	}
	hi := uint32(len(a.score)) - 1
	if t := uint32(to - a.lo); t < hi {
		hi = t
	}
	if lo > hi {
		return false
	}
	lw, hw := lo>>6, hi>>6
	loMask := ^uint64(0) << (lo & 63)
	hiMask := ^uint64(0) >> (63 - hi&63)
	if lw == hw {
		return a.viable[lw]&loMask&hiMask != 0
	}
	if a.viable[lw]&loMask != 0 || a.viable[hw]&hiMask != 0 {
		return true
	}
	for w := lw + 1; w < hw; w++ {
		if a.viable[w] != 0 {
			return true
		}
	}
	return false
}

// sweep drops documents whose partial score plus the remaining terms'
// bounds cannot reach min. The drop is permanent and safe: the threshold
// only rises and the suffix bound only shrinks, so non-viability is
// monotone, and a dropped document's accumulator entry — possibly left
// partial by later skipped blocks — stays strictly below the final k-th
// score, so it can neither enter the result nor displace a winner.
// Keeping the viable set small is what lets whole blocks of frequent
// terms skip even when the accumulator itself is large.
func (a *bmAcc) sweep(suffix, min float64) {
	for w, word := range a.viable {
		for word != 0 {
			b := word & (-word)
			word &^= b
			i := uint32(w)<<6 | uint32(bits.TrailingZeros64(b))
			if a.score[i]+suffix < min {
				a.viable[w] &^= b
			}
		}
	}
}

// refresh recomputes the k-th best score over all seen documents, reusing
// the accumulator's heap scratch so per-term refreshes allocate nothing
// once the heap has grown to k.
func (a *bmAcc) refresh(t *threshold, k int) {
	t.n = a.n
	if a.n < k {
		t.v = 0
		return
	}
	h := a.h[:0]
	a.forEachSeen(func(d index.DocID, s float64) {
		pushTop(&h, Hit{d, s}, k)
	})
	a.h = h
	if len(h) == k {
		t.v = h[0].Score
	}
}

func (a *bmAcc) forEachSeen(fn func(index.DocID, float64)) {
	for w, word := range a.seen {
		for word != 0 {
			b := word & (-word)
			word &^= b
			i := uint32(w)<<6 | uint32(bits.TrailingZeros64(b))
			fn(a.lo+index.DocID(i), a.score[i])
		}
	}
}

// selectTop extracts the k best hits, identically to selectTop on a map
// accumulator: same heap, same (score, DocID) tie-break. Only the returned
// slice is freshly allocated; the heap reuses the accumulator's scratch.
func (a *bmAcc) selectTop(k int) []Hit {
	h := a.h[:0]
	a.forEachSeen(func(d index.DocID, s float64) {
		pushTop(&h, Hit{d, s}, k)
	})
	out := make([]Hit, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = h.pop()
	}
	a.h = h[:0]
	return out
}

// blockMaxAccumulate runs the block-max accumulation loop over prepared
// terms, optionally restricted to a DocID range (the sharded path). Per
// block it decides, from the summary alone, whether the block must be
// decoded: yes when it may contain a still-viable accumulated document
// (those must be rescored for exactness) or when its score upper bound
// can still lift a new document into the top k; otherwise the block is
// skipped undecoded.
func blockMaxAccumulate(ctx context.Context, idx index.Source, s Scorer, terms []bmTerm, suffixBound []float64, k int, rng *docRange) ([]Hit, RetrievalStats, error) {
	var st RetrievalStats
	live := liveMask(idx)
	lo, hi := index.DocID(0), index.DocID(idx.NumDocs())
	if rng != nil {
		lo, hi = rng.Lo, rng.Hi
	}
	if lo >= hi {
		return nil, st, ctx.Err()
	}
	acc := acquireBMAcc(lo, hi)
	defer acc.release()
	var th threshold // k-th best score so far
	th.init(k)
	sinceCheck := 0
	for i, t := range terms {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		// >= keeps tie-breaking exact, as in maxScoreAccumulate.
		newDocsAllowed := suffixBound[i] >= th.min()
		if min := th.min(); min > 0 {
			acc.sweep(suffixBound[i], min)
		}
		cur := idx.TermCursor(t.term)
		if cur == nil {
			continue
		}
		var ok bool
		if lo > 0 {
			ok = cur.SeekBlock(lo)
		} else {
			ok = cur.NextBlock()
		}
		from := lo // blocks at or below from-1 have been accounted for
		for ; ok; ok = cur.NextBlock() {
			blockLast := cur.BlockLast()
			// Does the block's doc range cover any still-viable accumulated
			// document?
			hasAcc := acc.anyViable(from, blockLast)
			// Can a document first seen in this block still reach the top k?
			// Its score is at most this block's bound plus the remaining
			// terms' bounds.
			blockNewOK := newDocsAllowed &&
				t.qw*s.MaxWeight(float64(cur.BlockMaxTF()), t.df)+suffixBound[i+1] >= th.min()
			// Neither pruning reason requires the block's contents: skip it
			// undecoded. Its postings count toward neither Scored nor
			// Skipped — Postings − Scored − Skipped is the traffic the
			// block layout saved.
			if !hasAcc && !blockNewOK {
				st.BlocksSkipped++
				if !newDocsAllowed && !acc.anyViable(blockLast+1, hi-1) {
					// No viable docs remain above this block and the term
					// admits no new ones: the rest of the list cannot
					// contribute.
					break
				}
				if blockLast+1 >= hi {
					break
				}
				from = blockLast + 1
				continue
			}
			from = blockLast + 1
			pl, err := cur.Block()
			if err != nil {
				index.ReleaseCursor(cur)
				return nil, st, err
			}
			st.BlocksDecoded++
			if sinceCheck += len(pl); sinceCheck >= cancelCheckEvery {
				sinceCheck = 0
				if err := ctx.Err(); err != nil {
					index.ReleaseCursor(cur)
					return nil, st, err
				}
			}
			for _, p := range pl {
				if p.Doc < lo {
					continue
				}
				if p.Doc >= hi {
					break
				}
				// Tombstoned documents are dropped before the seen check:
				// never admitted, never scored, invisible to the threshold.
				if live != nil && !live.Live(p.Doc) {
					st.Skipped++
					continue
				}
				if !acc.isSeen(p.Doc) {
					if !blockNewOK {
						st.Skipped++
						continue
					}
					acc.admit(p.Doc)
				}
				st.Scored++
				acc.add(p.Doc, t.qw*s.Weight(float64(p.TF), t.df, idx.DocLen(p.Doc)))
			}
			if blockLast+1 >= hi {
				break
			}
		}
		index.ReleaseCursor(cur)
		acc.refresh(&th, k)
	}
	return acc.selectTop(k), st, nil
}
