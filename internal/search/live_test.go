package search

import (
	"context"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"newslink/internal/index"
)

// sameHits compares rankings the way the other traversal tests do: exact
// document order, scores within float tolerance (term-at-a-time
// accumulation order follows Go map iteration, so last-ulp differences
// between separate traversals are expected).
func sameHits(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Doc != b[i].Doc || math.Abs(a[i].Score-b[i].Score) > 1e-9 {
			return false
		}
	}
	return true
}

// buildRandIdx builds a deterministic synthetic index for the live-mask
// tests, large enough that MaxScore and block-max pruning actually engage.
func buildRandIdx(seed int64, nDocs int) *index.Index {
	rng := rand.New(rand.NewSource(seed))
	b := index.NewBuilder()
	for d := 0; d < nDocs; d++ {
		terms := make([]string, 5+rng.Intn(30))
		for i := range terms {
			t := rng.Intn(60)
			terms[i] = "t" + strconv.Itoa(t*rng.Intn(60)/60)
		}
		b.Add(terms)
	}
	return b.Build()
}

// TestLiveFilteredTraversalsAgree: every traversal strategy must return
// the same ranking over a tombstone-filtered source, that ranking must be
// exactly the unfiltered ranking with dead documents removed (Lucene
// semantics: tombstones mask results but keep contributing to DF and
// average length), and a dead document must never surface.
func TestLiveFilteredTraversalsAgree(t *testing.T) {
	const nDocs = 500
	idx := buildRandIdx(3, nDocs)
	rng := rand.New(rand.NewSource(4))
	dead := index.NewBitmap(nDocs)
	for d := 0; d < nDocs; d++ {
		if rng.Intn(4) == 0 {
			dead.Set(d)
		}
	}
	lf := index.NewLiveFiltered(idx, dead)
	if lf.NumLive() != nDocs-dead.Count() {
		t.Fatalf("NumLive = %d, want %d", lf.NumLive(), nDocs-dead.Count())
	}
	scorer := NewBM25(idx) // statistics over the FULL corpus, dead included
	ctx := context.Background()
	for qi := 0; qi < 20; qi++ {
		q := Query{}
		for j := 0; j < 1+rng.Intn(4); j++ {
			q["t"+strconv.Itoa(rng.Intn(60))] = 1
		}
		for _, k := range []int{1, 10, nDocs} {
			want := TopK(lf, scorer, q, k)
			for _, h := range want {
				if dead.Get(int(h.Doc)) {
					t.Fatalf("q%d k=%d: dead doc %d returned", qi, k, h.Doc)
				}
			}
			// The live ranking is the full ranking minus dead docs: masking
			// changes which documents are admitted, never how one scores.
			full := TopK(idx, scorer, q, idx.NumDocs())
			var masked []Hit
			for _, h := range full {
				if !dead.Get(int(h.Doc)) {
					masked = append(masked, h)
				}
			}
			if len(masked) > k {
				masked = masked[:k]
			}
			if !sameHits(want, masked) {
				t.Fatalf("q%d k=%d: filtered TopK != full-minus-dead\n%v\nvs\n%v", qi, k, want, masked)
			}
			ms, _, err := TopKMaxScoreStats(ctx, lf, scorer, q, k)
			if err != nil {
				t.Fatal(err)
			}
			bm, _, err := TopKBlockMaxStats(ctx, lf, scorer, q, k)
			if err != nil {
				t.Fatal(err)
			}
			mss, _, err := TopKMaxScoreShardedStats(ctx, lf, scorer, q, k, 4)
			if err != nil {
				t.Fatal(err)
			}
			bms, _, err := TopKBlockMaxShardedStats(ctx, lf, scorer, q, k, 4)
			if err != nil {
				t.Fatal(err)
			}
			for name, got := range map[string][]Hit{
				"MaxScore": ms, "BlockMax": bm, "MaxScoreSharded": mss, "BlockMaxSharded": bms,
			} {
				if !sameHits(got, want) {
					t.Fatalf("q%d k=%d: %s disagrees with TAAT on filtered source\n%v\nvs\n%v", qi, k, name, got, want)
				}
			}
		}
	}
}

// TestLiveFilteredPassThrough: a LiveFiltered wrapper delegates the Source
// interface unchanged — statistics keep counting tombstoned documents.
func TestLiveFilteredPassThrough(t *testing.T) {
	idx := buildRandIdx(5, 50)
	dead := index.NewBitmap(50)
	dead.Set(10)
	lf := index.NewLiveFiltered(idx, dead)
	if lf.NumDocs() != idx.NumDocs() || lf.AvgDocLen() != idx.AvgDocLen() {
		t.Fatal("LiveFiltered changed corpus statistics")
	}
	if lf.Live(10) || !lf.Live(11) {
		t.Fatal("Live mask wrong")
	}
	if lf.Unwrap() != idx {
		t.Fatal("Unwrap lost the underlying source")
	}
}
