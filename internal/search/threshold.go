package search

import (
	"newslink/internal/index"
)

// The paper retrieves the top-k documents under Equation 3 with "existing
// top-k ranking algorithms [49]" — Fagin's Threshold Algorithm (TA). TA
// consumes the BOW and BON rankings by sorted access in parallel, resolves
// each newly seen document's missing score by random access, and stops as
// soon as the k-th best fused score reaches the threshold
//
//	τ = wa·sa + wb·sb
//
// where sa, sb are the scores at the current sorted-access positions: no
// unseen document can beat τ.

// RankedList is one ranking consumed by the threshold algorithm.
type RankedList interface {
	// Next returns the next hit by descending score; ok=false at the end.
	Next() (h Hit, ok bool)
	// Score random-accesses the document's score in this ranking (0 if the
	// document does not appear).
	Score(doc index.DocID) float64
}

// SliceList adapts a complete, descending-sorted ranking to RankedList.
type SliceList struct {
	hits []Hit
	pos  int
	byID map[index.DocID]float64
}

// NewSliceList wraps hits (must be sorted by descending score; treated as
// the complete ranking, so absent documents score 0).
func NewSliceList(hits []Hit) *SliceList {
	m := make(map[index.DocID]float64, len(hits))
	for _, h := range hits {
		m[h.Doc] = h.Score
	}
	return &SliceList{hits: hits, byID: m}
}

// Next implements RankedList.
func (l *SliceList) Next() (Hit, bool) {
	if l.pos >= len(l.hits) {
		return Hit{}, false
	}
	h := l.hits[l.pos]
	l.pos++
	return h, true
}

// Score implements RankedList.
func (l *SliceList) Score(doc index.DocID) float64 { return l.byID[doc] }

// ThresholdTopK runs TA over two rankings with weights wa and wb and
// returns the exact top k of wa·a + wb·b together with the number of sorted
// accesses performed (the early-termination statistic).
func ThresholdTopK(a, b RankedList, wa, wb float64, k int) ([]Hit, int) {
	if k <= 0 {
		return nil, 0
	}
	seen := acquireSeenSet()
	defer releaseSeenSet(seen)
	var top hitHeap
	accesses := 0
	// Current sorted-access frontier scores; start above any real score so
	// the threshold is initially unbeatable.
	frontA, frontB := 0.0, 0.0
	doneA, doneB := false, false
	consider := func(doc index.DocID) {
		if seen[doc] {
			return
		}
		seen[doc] = true
		s := wa*a.Score(doc) + wb*b.Score(doc)
		pushTop(&top, Hit{Doc: doc, Score: s}, k)
	}
	for !doneA || !doneB {
		if !doneA {
			h, ok := a.Next()
			if !ok {
				doneA, frontA = true, 0
			} else {
				accesses++
				frontA = h.Score
				consider(h.Doc)
			}
		}
		if !doneB {
			h, ok := b.Next()
			if !ok {
				doneB, frontB = true, 0
			} else {
				accesses++
				frontB = h.Score
				consider(h.Doc)
			}
		}
		// Stop when the k-th best seen score can no longer be beaten by any
		// unseen document (whose fused score is at most the threshold).
		// Strictly greater keeps tie-breaking exact: an unseen document
		// scoring exactly the threshold could still win a DocID tie.
		if len(top) == k {
			threshold := wa*frontA + wb*frontB
			if top[0].Score > threshold {
				break
			}
		}
	}
	return drainHeap(top), accesses
}

// FuseTA is Equation 3 via the threshold algorithm: it normalizes both
// rankings (as Fuse does), then runs TA with weights (1-beta, beta). The
// result matches Fuse on the same inputs up to equal-score tie order; ties
// are broken identically (ascending DocID).
func FuseTA(bow, bon []Hit, beta float64, k int) ([]Hit, int) {
	switch {
	case beta <= 0:
		return clip(normalize(bow), k), 0
	case beta >= 1:
		return clip(normalize(bon), k), 0
	}
	return ThresholdTopK(
		NewSliceList(normalize(bow)),
		NewSliceList(normalize(bon)),
		1-beta, beta, k)
}
