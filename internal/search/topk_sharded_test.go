package search

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"newslink/internal/index"
)

// randomIndex builds a deterministic synthetic corpus: docs draw a
// zipf-flavoured number of terms from a bounded vocabulary so postings
// lists have realistic skew (a few huge, many tiny).
func randomIndex(nDocs, vocab int, seed int64) *index.Index {
	rng := rand.New(rand.NewSource(seed))
	b := index.NewBuilder()
	for d := 0; d < nDocs; d++ {
		n := 5 + rng.Intn(60)
		terms := make([]string, n)
		for i := range terms {
			// Square the draw to skew toward low term ids (frequent terms).
			t := rng.Intn(vocab)
			t = t * rng.Intn(vocab) / vocab
			terms[i] = fmt.Sprintf("t%d", t)
		}
		b.Add(terms)
	}
	return b.Build()
}

func randomQuery(rng *rand.Rand, vocab, nTerms int) Query {
	q := make(Query, nTerms)
	for i := 0; i < nTerms; i++ {
		q[fmt.Sprintf("t%d", rng.Intn(vocab))] = 1 + float64(rng.Intn(3))
	}
	return q
}

// TestShardedTopKMatchesSequential: the sharded traversal must return
// rankings identical to the sequential max-score path — same documents,
// same scores (bit for bit), same tie-breaking — for every shard count.
func TestShardedTopKMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		nDocs, vocab int
	}{
		{37, 40},
		{500, 120},
		{3000, 400},
	} {
		idx := randomIndex(tc.nDocs, tc.vocab, int64(tc.nDocs))
		scorer := NewBM25(idx)
		rng := rand.New(rand.NewSource(7))
		for qi := 0; qi < 8; qi++ {
			q := randomQuery(rng, tc.vocab, 2+qi%7)
			for _, k := range []int{1, 5, 20, 100} {
				want := TopKMaxScore(idx, scorer, q, k)
				for _, shards := range []int{1, 2, 3, 4, 7, 16, tc.nDocs + 5} {
					got, err := TopKMaxScoreSharded(context.Background(), idx, scorer, q, k, shards)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("docs=%d q=%d k=%d shards=%d:\nsharded   %v\nsequential %v",
							tc.nDocs, qi, k, shards, got, want)
					}
				}
			}
		}
	}
}

// TestShardedTopKAgainstExactTopK cross-checks against the exhaustive
// accumulator, which uses no pruning at all. TopK accumulates terms in map
// iteration order, so scores agree only up to float addition reordering;
// retrieve everything and compare per-document within tolerance.
func TestShardedTopKAgainstExactTopK(t *testing.T) {
	idx := randomIndex(800, 150, 3)
	scorer := NewBM25(idx)
	rng := rand.New(rand.NewSource(11))
	for qi := 0; qi < 6; qi++ {
		q := randomQuery(rng, 150, 3+qi)
		want := TopK(idx, scorer, q, idx.NumDocs())
		got, err := TopKMaxScoreSharded(context.Background(), idx, scorer, q, idx.NumDocs(), 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("q=%d: %d hits, exact has %d", qi, len(got), len(want))
		}
		wantScore := make(map[index.DocID]float64, len(want))
		for _, h := range want {
			wantScore[h.Doc] = h.Score
		}
		for _, h := range got {
			exact, ok := wantScore[h.Doc]
			if !ok {
				t.Fatalf("q=%d: doc %d missing from exact result", qi, h.Doc)
			}
			if diff := h.Score - exact; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("q=%d doc %d: score %v, exact %v", qi, h.Doc, h.Score, exact)
			}
		}
	}
}

// TestTopKCancellation: sequential and sharded traversals abort with
// ctx.Err() on an already-cancelled context.
func TestTopKCancellation(t *testing.T) {
	idx := randomIndex(200, 60, 5)
	scorer := NewBM25(idx)
	q := Query{"t1": 1, "t2": 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TopKMaxScoreContext(ctx, idx, scorer, q, 10); err != context.Canceled {
		t.Fatalf("sequential: err = %v", err)
	}
	if _, err := TopKMaxScoreSharded(ctx, idx, scorer, q, 10, 4); err != context.Canceled {
		t.Fatalf("sharded: err = %v", err)
	}
}
