package newslink

import (
	"newslink/internal/core"
	"time"

	"newslink/internal/obs"
	"newslink/internal/search"
)

// engineMetrics holds the pre-registered metric handles of one Engine.
// Registration happens once in New; the query pipeline only touches the
// atomic instruments, never the registry, so instrumentation adds no lock
// traffic to the read path (see DESIGN.md §8).
type engineMetrics struct {
	searches      *obs.Counter
	searchErrors  *obs.Counter
	explains      *obs.Counter
	explainErrors *obs.Counter
	relateds      *obs.Counter
	relatedErrors *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	// embed-path instrumentation: the entity-set cache tier plus the core
	// embedder's per-stage counts (groups, expansions, group-cache hits).
	embedCacheHits      *obs.Counter
	embedCacheMisses    *obs.Counter
	embedGroups         *obs.Counter
	embedExpansions     *obs.Counter
	embedGroupCacheHits *obs.Counter
	refreshes           *obs.Counter
	segmentMerges       *obs.Counter
	blocksDecoded       *obs.Counter
	blocksSkipped       *obs.Counter
	// ingest/WAL instrumentation: queue admissions and sheds, applied
	// writes, the live queue depth, and the durability cost of the log.
	ingestQueued    *obs.Counter
	ingestApplied   *obs.Counter
	ingestShed      *obs.Counter
	ingestDepth     *obs.Gauge
	walAppends      *obs.Counter
	walBytes        *obs.Counter
	walReplayed     *obs.Counter
	walFsyncSeconds *obs.Histogram
	docs            *obs.Gauge
	segments        *obs.Gauge
	liveDocs        *obs.Gauge
	deletedDocs     *obs.Gauge
	searchSeconds   *obs.Histogram
	// degraded counts searches served BOW-only, keyed by degradation
	// reason. Both reasons are pre-registered in New so the series appear
	// in expositions before the first incident; the map is read-only after
	// New, so concurrent searches read it lock-free.
	degraded map[string]*obs.Counter
	// stages maps the obs.Stage* names to their latency histograms. The map
	// is read-only after New, so concurrent searches read it lock-free.
	stages map[string]*obs.Histogram
}

func newEngineMetrics(r *obs.Registry) engineMetrics {
	stageHist := func(stage string) *obs.Histogram {
		return r.Histogram("newslink_query_stage_seconds",
			"Latency of one pipeline stage of a search or explain request.",
			nil, obs.L("stage", stage))
	}
	return engineMetrics{
		searches:      r.Counter("newslink_searches_total", "Search requests served (including failed ones)."),
		searchErrors:  r.Counter("newslink_search_errors_total", "Search requests that returned an error (including cancellations)."),
		explains:      r.Counter("newslink_explains_total", "Explain requests served (including failed ones)."),
		explainErrors: r.Counter("newslink_explain_errors_total", "Explain requests that returned an error (including cancellations)."),
		relateds:      r.Counter("newslink_relateds_total", "Related-news requests served (including failed ones)."),
		relatedErrors: r.Counter("newslink_related_errors_total", "Related-news requests that returned an error (including cancellations)."),
		cacheHits:     r.Counter("newslink_query_cache_hits_total", "Query analyses served from the LRU cache."),
		cacheMisses:   r.Counter("newslink_query_cache_misses_total", "Query analyses that ran the NLP + NE components."),
		embedCacheHits: r.Counter("newslink_embed_cache_hits_total",
			"Query embeddings served from the entity-set cache (tier two: text differed, entities matched)."),
		embedCacheMisses: r.Counter("newslink_embed_cache_misses_total",
			"Query embeddings that ran the G* search."),
		embedGroups: r.Counter("newslink_embed_groups_total",
			"Entity groups submitted for query-side subgraph embedding."),
		embedExpansions: r.Counter("newslink_embed_expansions_total",
			"Path enumerations performed by query-side G* searches."),
		embedGroupCacheHits: r.Counter("newslink_embed_group_cache_hits_total",
			"Entity groups served from the embedder's per-group subgraph cache."),
		refreshes:     r.Counter("newslink_refreshes_total", "Segment refreshes (explicit and search-triggered)."),
		segmentMerges: r.Counter("newslink_segment_merges_total", "Segment merges performed by the tiered policy and Compact."),
		blocksDecoded: r.Counter("newslink_blocks_decoded_total", "Postings blocks decoded by block-max retrieval."),
		blocksSkipped: r.Counter("newslink_blocks_skipped_total", "Postings blocks pruned undecoded by the block-max bound."),
		ingestQueued:  r.Counter("newslink_ingest_queued_total", "Writes admitted into the async ingest queue."),
		ingestApplied: r.Counter("newslink_ingest_applied_total", "Queued writes applied to the engine by the ingest applier."),
		ingestShed:    r.Counter("newslink_ingest_shed_total", "Writes rejected with ErrIngestOverload because the ingest queue was full."),
		ingestDepth:   r.Gauge("newslink_ingest_queue_depth", "Writes currently queued and not yet applied."),
		walAppends:    r.Counter("newslink_wal_appends_total", "Records appended to the write-ahead log."),
		walBytes:      r.Counter("newslink_wal_appended_bytes_total", "Framed bytes appended to the write-ahead log."),
		walReplayed:   r.Counter("newslink_wal_replayed_total", "Records replayed from the write-ahead log at startup."),
		walFsyncSeconds: r.Histogram("newslink_wal_fsync_seconds",
			"Latency of one group-commit fsync of the write-ahead log.", nil),
		docs:          r.Gauge("newslink_docs", "Documents currently indexed (live plus pending, excluding tombstoned)."),
		segments:      r.Gauge("newslink_segments", "Sealed segments currently serving searches."),
		liveDocs:      r.Gauge("newslink_live_docs", "Live (searchable, non-tombstoned) documents in sealed segments."),
		deletedDocs:   r.Gauge("newslink_deleted_docs", "Tombstoned documents still held in segments (reclaimed by merges)."),
		searchSeconds: r.Histogram("newslink_search_seconds", "End-to-end latency of SearchContext.", nil),
		degraded: map[string]*obs.Counter{
			DegradedBONError: r.Counter("newslink_search_degraded_total",
				"Searches served with BOW-only ranking after a BON-stage failure, by reason.",
				obs.L("reason", DegradedBONError)),
			DegradedBONTimeout: r.Counter("newslink_search_degraded_total",
				"Searches served with BOW-only ranking after a BON-stage failure, by reason.",
				obs.L("reason", DegradedBONTimeout)),
		},
		stages: map[string]*obs.Histogram{
			obs.StageAnalyze: stageHist(obs.StageAnalyze),
			obs.StageEmbed:   stageHist(obs.StageEmbed),
			obs.StageBOW:     stageHist(obs.StageBOW),
			obs.StageBON:     stageHist(obs.StageBON),
			obs.StageFuse:    stageHist(obs.StageFuse),
			obs.StageTopK:    stageHist(obs.StageTopK),
			obs.StagePaths:   stageHist(obs.StagePaths),
		},
	}
}

// blocksObserve folds one retrieval's block-pruning counters into the
// engine-wide totals, making pruning effectiveness visible at /v1/metrics.
func (m *engineMetrics) blocksObserve(st search.RetrievalStats) {
	if st.BlocksDecoded > 0 {
		m.blocksDecoded.Add(int64(st.BlocksDecoded))
	}
	if st.BlocksSkipped > 0 {
		m.blocksSkipped.Add(int64(st.BlocksSkipped))
	}
}

// embedObserve folds one query embedding's statistics into the engine-wide
// totals. The entity-set cache counts its own hits and misses; this covers
// the per-group counters a cache hit never generates.
func (m *engineMetrics) embedObserve(st core.EmbedStats) {
	if st.Groups > 0 {
		m.embedGroups.Add(int64(st.Groups))
	}
	if st.Expansions > 0 {
		m.embedExpansions.Add(int64(st.Expansions))
	}
	if st.GroupCacheHits > 0 {
		m.embedGroupCacheHits.Add(int64(st.GroupCacheHits))
	}
}

// stageObserve records one stage duration into its latency histogram.
func (m *engineMetrics) stageObserve(stage string, d time.Duration) {
	if h := m.stages[stage]; h != nil {
		h.Observe(d.Seconds())
	}
}

// Metrics returns the engine's metric registry. The HTTP layer serves it at
// /v1/metrics (JSON) and /v1/metrics/prom (Prometheus text format); servers
// embedding the engine directly can register their own metrics into the
// same registry.
func (e *Engine) Metrics() *obs.Registry { return e.metrics }
