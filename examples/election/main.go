// Election reproduces the paper's case study (Section VII-E, Figure 6,
// Table VI): with β = 1 the search uses ONLY subgraph embeddings, and the
// US-election result is retrieved although it shares almost no keywords
// with the query — the relationship paths through the "US presidential
// election 2016" node explain why.
package main

import (
	"fmt"
	"log"

	"newslink"
	"newslink/internal/corpus"
)

func main() {
	g, arts := corpus.Sample()
	cfg := newslink.DefaultConfig()
	cfg.Beta = 1 // subgraph embeddings only, as in the case study
	engine := newslink.New(g, cfg)
	for _, a := range arts {
		if err := engine.Add(newslink.Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			log.Fatal(err)
		}
	}
	if err := engine.Build(); err != nil {
		log.Fatal(err)
	}

	// Q: the paper's query statement about Clinton, Sanders and the FBI.
	query := "Sanders said voters were tired of hearing about Clinton and the FBI emails."
	fmt.Println("Q:", query)

	results, err := engine.Search(query, 3)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no results")
	}
	fmt.Println("\nresults (β=1, subgraph embeddings only):")
	for i, r := range results {
		fmt.Printf("  %d. [%d] %s (score %.3f)\n", i+1, r.ID, r.Title, r.Score)
	}

	// Table VI: relationship paths with intuitive readings.
	fmt.Println("\nevidence for the top result:")
	exp, err := engine.Explain(query, results[0].ID, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range exp.Paths {
		fmt.Println("  path:", p.Rendered)
		fmt.Println("       ", describe(p))
	}
}

// describe produces a Table VI style natural-language reading of a path.
func describe(p newslink.Path) string {
	if len(p.Nodes) == 3 && len(p.Relations) == 2 && p.Relations[0] == p.Relations[1] {
		return fmt.Sprintf("%s and %s are both linked to %s (%s).",
			p.Nodes[0], p.Nodes[2], p.Nodes[1], p.Relations[0])
	}
	if len(p.Nodes) == 2 {
		return fmt.Sprintf("%s is directly related to %s (%s).",
			p.Nodes[0], p.Nodes[1], p.Relations[0])
	}
	return fmt.Sprintf("%s connects to %s through %d intermediate entities.",
		p.Nodes[0], p.Nodes[len(p.Nodes)-1], len(p.Nodes)-2)
}
