// Newsroom is the scale scenario from the paper's introduction: a
// journalist searches a large corpus with a partial query (one sentence of
// a story) and needs robust results. The example generates a synthetic
// world and a CNN-like corpus, runs the Partial Query Similarity Search
// task against NewsLink(0.2) and plain BM25 (β=0, the Lucene baseline), in
// both query modes of Section VII-B: the densest-entity sentence (an easy,
// context-rich query) and a random sentence (context possibly missing —
// where the paper reports NewsLink's robustness edge).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"newslink"
	"newslink/internal/corpus"
	"newslink/internal/kg"
	"newslink/internal/nlp"
)

func main() {
	const (
		seed = 77
		docs = 400
	)
	cfg := kg.DefaultConfig(seed)
	cfg.Countries = 12
	world := kg.Generate(cfg)
	arts := corpus.Generate(world, corpus.CNNLike(), docs, seed)
	split := corpus.MakeSplit(arts, seed)
	fmt.Printf("world: %d KG nodes, corpus: %d docs (%d test)\n",
		world.Graph.NumNodes(), len(arts), len(split.Test))

	build := func(beta float64) *newslink.Engine {
		c := newslink.DefaultConfig()
		c.Beta = beta
		e := newslink.New(world.Graph, c)
		for _, a := range arts {
			if err := e.Add(newslink.Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
				log.Fatal(err)
			}
		}
		if err := e.Build(); err != nil {
			log.Fatal(err)
		}
		return e
	}
	t0 := time.Now()
	newsLink := build(0.2)
	fmt.Printf("indexed NewsLink(0.2) in %v\n", time.Since(t0).Round(time.Millisecond))
	bm25 := build(0)

	pipe := nlp.NewPipeline(world.Graph.Index())
	for _, mode := range []string{"densest-entity sentence", "random sentence"} {
		rng := rand.New(rand.NewSource(seed))
		type hitCounts struct{ at1, at5 int }
		var nlHits, bmHits hitCounts
		n := 0
		for _, a := range split.Test {
			doc := pipe.Process(a.Text)
			if len(doc.Sentences) == 0 {
				continue
			}
			idx := 0
			if mode == "random sentence" {
				idx = rng.Intn(len(doc.Sentences))
			} else {
				bestDen := -1.0
				for i := range doc.Sentences {
					if d := doc.Sentences[i].EntityDensity(); d > bestDen {
						bestDen, idx = d, i
					}
				}
			}
			q := doc.Sentences[idx].Text
			n++
			count := func(e *newslink.Engine, h *hitCounts) {
				res, err := e.Search(q, 5)
				if err != nil {
					log.Fatal(err)
				}
				for i, r := range res {
					if r.ID == a.ID {
						if i == 0 {
							h.at1++
						}
						h.at5++
						break
					}
				}
			}
			count(newsLink, &nlHits)
			count(bm25, &bmHits)
		}
		fmt.Printf("\npartial-query recovery, %s (%d queries):\n", mode, n)
		fmt.Printf("  %-15s HIT@1 %5.1f%%  HIT@5 %5.1f%%\n", "NewsLink(0.2)",
			100*float64(nlHits.at1)/float64(n), 100*float64(nlHits.at5)/float64(n))
		fmt.Printf("  %-15s HIT@1 %5.1f%%  HIT@5 %5.1f%%\n", "BM25 (β=0)",
			100*float64(bmHits.at1)/float64(n), 100*float64(bmHits.at5)/float64(n))
	}
	fmt.Println("\nWith context-poor random-sentence queries the subgraph embeddings")
	fmt.Println("enrich the query and NewsLink recovers more source stories than")
	fmt.Println("keyword search — and every hit comes with relationship-path")
	fmt.Println("evidence (see the geopolitics and election examples).")
}
