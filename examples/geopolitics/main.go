// Geopolitics reproduces the paper's running example (Example 1, Figure 1,
// Tables I-II): the query is the Pakistan/Taliban conflict story T_q, the
// expected result the Taliban bombing story T_r, and the output shows the
// matched, unmatched and induced entities plus the relationship paths
// between the two texts.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"newslink"
	"newslink/internal/corpus"
	"newslink/internal/nlp"
)

func main() {
	g, arts := corpus.Sample()
	engine := newslink.New(g, newslink.DefaultConfig())
	for _, a := range arts {
		if err := engine.Add(newslink.Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			log.Fatal(err)
		}
	}
	if err := engine.Build(); err != nil {
		log.Fatal(err)
	}

	// T_q: the paper's query story (Table I row 1).
	query := "Military conflicts between Pakistan and Taliban intensified in Upper Dir and the Swat Valley."

	// Table I: entity classification for the query.
	pipe := nlp.NewPipeline(g.Index())
	doc := pipe.Process(query)
	var matched, unmatched []string
	for _, s := range doc.Sentences {
		for _, m := range s.Mentions {
			if m.Linked {
				matched = append(matched, m.Text)
			} else {
				unmatched = append(unmatched, m.Text)
			}
		}
	}
	fmt.Println("T_q:", query)
	fmt.Println("entities recognized:", strings.Join(matched, ", "))
	if len(unmatched) > 0 {
		fmt.Println("unmatched entities:", strings.Join(unmatched, ", "))
	}

	results, err := engine.Search(query, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresults:")
	for i, r := range results {
		fmt.Printf("  %d. [%d] %s (score %.3f)\n", i+1, r.ID, r.Title, r.Score)
	}

	// Table I last column + Table II: induced entities and paths for the
	// top result.
	top := results[0].ID
	exp, err := engine.Explain(query, top, 4)
	if err != nil {
		log.Fatal(err)
	}
	inText := strings.ToLower(query + " " + arts[top].Text)
	var induced []string
	for _, eLabel := range exp.SharedEntities {
		if !strings.Contains(inText, strings.ToLower(eLabel)) {
			induced = append(induced, eLabel)
		}
	}
	sort.Strings(induced)
	fmt.Println("\ninduced entities (in embedding, not in either text):",
		strings.Join(induced, ", "))
	fmt.Println("relationship paths linking the two stories:")
	for _, p := range exp.Paths {
		fmt.Println("  ", p.Rendered)
	}
}
