// Quickstart: build a tiny knowledge graph, index six documents, search,
// and print relationship-path explanations — the smallest end-to-end use of
// the public API.
package main

import (
	"fmt"
	"log"

	"newslink"
	"newslink/internal/kg"
)

func main() {
	// 1. A six-node knowledge graph: two cities in a province, a militant
	// group active there, and a country.
	b := kg.NewBuilder(8)
	prov := b.AddNode("Northfold", kg.KindGPE, "a province")
	cityA := b.AddNode("Harrowgate", kg.KindGPE, "a city in Northfold")
	cityB := b.AddNode("Windmere", kg.KindGPE, "a city in Northfold")
	group := b.AddNode("Iron Front", kg.KindOrg, "a militant group")
	country := b.AddNode("Valdoria", kg.KindGPE, "a country")
	b.AddEdgeByName(cityA, prov, "located in", 1)
	b.AddEdgeByName(cityB, prov, "located in", 1)
	b.AddEdgeByName(group, prov, "active in", 1)
	b.AddEdgeByName(prov, country, "located in", 1)
	g := b.Build()

	// 2. Index a handful of documents.
	docs := []newslink.Document{
		{ID: 0, Title: "Clashes in Harrowgate",
			Text: "Iron Front fighters clashed with police in Harrowgate overnight."},
		{ID: 1, Title: "Explosion hits Windmere",
			Text: "An explosion damaged a market in Windmere; no group claimed the blast."},
		{ID: 2, Title: "Valdoria budget passes",
			Text: "The parliament of Valdoria approved next year's budget."},
		{ID: 3, Title: "Rain disrupts harvest",
			Text: "Persistent rain disrupted the harvest across the lowlands."},
		{ID: 4, Title: "Northfold curfew",
			Text: "Authorities imposed a curfew across Northfold after the unrest."},
		{ID: 5, Title: "Football final tonight",
			Text: "The football final kicks off tonight in the capital."},
	}
	engine := newslink.New(g, newslink.DefaultConfig())
	for _, d := range docs {
		if err := engine.Add(d); err != nil {
			log.Fatal(err)
		}
	}
	if err := engine.Build(); err != nil {
		log.Fatal(err)
	}

	// 3. Search. The query mentions Iron Front and Windmere — document 1
	// never mentions Iron Front, but both embed near Northfold in the KG.
	query := "Iron Front blamed for unrest near Windmere"
	results, err := engine.Search(query, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n\n", query)
	for i, r := range results {
		fmt.Printf("%d. [%d] %s (score %.3f)\n", i+1, r.ID, r.Title, r.Score)
		exp, err := engine.Explain(query, r.ID, 2)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range exp.Paths {
			fmt.Printf("   why: %s\n", p.Rendered)
		}
	}
}
