// Wikidata demonstrates running NewsLink on a knowledge graph loaded from
// RDF N-Triples — the format of real Wikidata truthy dumps. The example
// embeds a small dump inline; point ParseNTriples at a decompressed
// `latest-truthy.nt` slice to run against actual Wikidata.
package main

import (
	"fmt"
	"log"
	"strings"

	"newslink"
	"newslink/internal/kg"
)

// A miniature Wikidata-style dump: Q183 Germany, Q64 Berlin, Q1022 Stuttgart,
// Q329 Bavaria region stand-ins, plus labels, descriptions and aliases.
const dump = `
<http://wd/Q183> <http://www.w3.org/2000/01/rdf-schema#label> "Germany"@en .
<http://wd/Q183> <http://schema.org/description> "country in central Europe"@en .
<http://wd/Q64> <http://www.w3.org/2000/01/rdf-schema#label> "Berlin"@en .
<http://wd/Q64> <http://www.w3.org/2004/02/skos/core#altLabel> "German capital"@en .
<http://wd/Q64> <http://wd/prop/P131> <http://wd/Q183> .
<http://wd/Q1022> <http://www.w3.org/2000/01/rdf-schema#label> "Stuttgart"@en .
<http://wd/Q1022> <http://wd/prop/P131> <http://wd/Q183> .
<http://wd/Q329> <http://www.w3.org/2000/01/rdf-schema#label> "Bavaria"@en .
<http://wd/Q329> <http://wd/prop/P131> <http://wd/Q183> .
<http://wd/Q168> <http://www.w3.org/2000/01/rdf-schema#label> "Munich"@en .
<http://wd/Q168> <http://wd/prop/P131> <http://wd/Q329> .
<http://wd/QX1> <http://www.w3.org/2000/01/rdf-schema#label> "Oktoberfest"@en .
<http://wd/QX1> <http://wd/prop/P276> <http://wd/Q168> .
`

func main() {
	g, err := kg.ParseNTriples(strings.NewReader(dump), "en", true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed N-Triples: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	docs := []newslink.Document{
		{ID: 0, Title: "Oktoberfest opens",
			Text: "Crowds gathered in Munich as the Oktoberfest opened its gates."},
		{ID: 1, Title: "Bavaria harvest festival",
			Text: "Villages across Bavaria celebrated the harvest with parades."},
		{ID: 2, Title: "Berlin transport strike",
			Text: "A transport strike slowed the morning commute in Berlin."},
		{ID: 3, Title: "Stuttgart auto show",
			Text: "Manufacturers unveiled new models at the Stuttgart auto show."},
	}
	e := newslink.New(g, newslink.DefaultConfig())
	for _, d := range docs {
		if err := e.Add(d); err != nil {
			log.Fatal(err)
		}
	}
	if err := e.Build(); err != nil {
		log.Fatal(err)
	}

	// "German capital" is an alias of Berlin in the dump; Oktoberfest and
	// Bavaria connect through Munich in the graph.
	for _, q := range []string{
		"strike in the German capital",
		"Oktoberfest celebrations in Bavaria",
	} {
		fmt.Printf("\nquery: %s\n", q)
		res, err := e.Search(q, 2)
		if err != nil {
			log.Fatal(err)
		}
		for i, r := range res {
			fmt.Printf("  %d. [%d] %s (score %.3f)\n", i+1, r.ID, r.Title, r.Score)
		}
		if len(res) > 0 {
			exp, err := e.Explain(q, res[0].ID, 2)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range exp.Paths {
				fmt.Printf("     why: %s\n", p.Rendered)
			}
		}
	}
}
