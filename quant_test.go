package newslink

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"newslink/internal/corpus"
	"newslink/internal/index"
	"newslink/internal/search"
	"newslink/internal/textembed"
)

// quantLabels are graph entity names the synthetic corpora draw from (all
// resolvable in the sample knowledge graph).
var quantLabels = []string{
	"Pakistan", "Taliban", "Khyber", "Lahore", "Peshawar", "Upper Dir",
	"Swat Valley", "Afghanistan", "Kunar", "Waziristan", "Pakistani Army",
	"Clinton", "Trump", "Sanders", "FBI", "Black Lives Matter",
	"United States", "Democratic Party",
}

// quantCorpusEngine builds an engine over nDocs synthetic documents, each
// naming a random entity subset (the structure real news has: score gaps
// come from discrete entity overlap).
func quantCorpusEngine(t *testing.T, rng *rand.Rand, nDocs int, opts ...Option) *Engine {
	t.Helper()
	g, _ := corpus.Sample()
	e := New(g, append([]Option{Config{Beta: 0.5, Model: LCAG, MaxDepth: 6, PoolDepth: 20}}, opts...)...)
	for i := 0; i < nDocs; i++ {
		names := make([]string, 2+rng.Intn(3))
		for j := range names {
			names[j] = quantLabels[rng.Intn(len(quantLabels))]
		}
		text := fmt.Sprintf("Report %d: %s in focus. Officials from %s commented.",
			i, strings.Join(names, " and "), names[0])
		if err := e.Add(Document{ID: i, Title: fmt.Sprintf("story %d", i), Text: text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	return e
}

// floatBONRanking is the all-float reference for the quantized BON stage:
// every live document scored by float signature dot product, ranked under
// the search comparator, clipped to pool.
func floatBONRanking(snap *segmentSet, qSig textembed.Vector, pool int) []search.Hit {
	var hits []search.Hit
	for si, sg := range snap.segs {
		base := snap.bases[si]
		for j := range sg.docs {
			if sg.dead.Get(j) {
				continue
			}
			s := textembed.Dot(qSig, docSignature(sg.embs[j]))
			if s > 0 {
				hits = append(hits, search.Hit{Doc: index.DocID(base + j), Score: s})
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	if len(hits) > pool {
		hits = hits[:pool]
	}
	return hits
}

// TestQuantizedSearchRecallFloor is the gate on WithQuantizedEmbeddings:
// across random corpora, fusion weights β and result depths k, quantized
// search must overlap the all-float64 signature scoring at ≥ 0.99 mean
// overlap@k. The reference runs the engine's own pipeline — same analyzed
// query, same BOW stage, same fusion — with the BON list computed in
// float64, so the measurement isolates exactly what quantization changed.
func TestQuantizedSearchRecallFloor(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(52))
	for _, nDocs := range []int{150, 400} {
		e := quantCorpusEngine(t, rng, nDocs, WithQuantizedEmbeddings())
		snap := e.set.Load()
		for _, beta := range []float64{0, 0.3, 0.7, 1} {
			for _, k := range []int{3, 5, 10} {
				const queries = 12
				sum := 0.0
				for qi := 0; qi < queries; qi++ {
					names := make([]string, 2+rng.Intn(2))
					for j := range names {
						names[j] = quantLabels[rng.Intn(len(quantLabels))]
					}
					text := "News about " + strings.Join(names, " and ")
					beta := beta
					got, err := e.SearchContext(ctx, Query{Text: text, K: k, Beta: &beta})
					if err != nil {
						t.Fatal(err)
					}
					qEmb, qTerms, err := e.analyzeQuery(ctx, text)
					if err != nil {
						t.Fatal(err)
					}
					pool := e.cfg.PoolDepth
					if pool > snap.numLive() {
						pool = snap.numLive()
					}
					var bow []search.Hit
					if beta < 1 {
						bow, _, err = topKAuto(ctx, snap.text, search.NewBM25(snap.text), search.NewQuery(qTerms), pool)
						if err != nil {
							t.Fatal(err)
						}
					}
					var bon []search.Hit
					if beta > 0 && qEmb != nil {
						bon = floatBONRanking(snap, docSignature(qEmb), pool)
					}
					want := search.Fuse(bow, bon, beta, k)
					wantIDs := make(map[int]bool, len(want))
					for _, h := range want {
						wantIDs[snap.doc(int(h.Doc)).ID] = true
					}
					if len(want) == 0 {
						if len(got) != 0 {
							t.Fatalf("β=%g k=%d: reference empty, quantized returned %d hits", beta, k, len(got))
						}
						sum++
						continue
					}
					hit := 0
					for i, r := range got {
						if i >= len(want) {
							break
						}
						if wantIDs[r.ID] {
							hit++
						}
					}
					sum += float64(hit) / float64(len(want))
				}
				if mean := sum / queries; mean < 0.99 {
					t.Errorf("docs=%d β=%g k=%d: mean overlap = %v, want >= 0.99", nDocs, beta, k, mean)
				}
			}
		}
	}
}

// TestQuantizedFloatPathUntouched: without the option the engine must be
// bitwise indistinguishable — same results, no signatures built.
func TestQuantizedFloatPathUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	plain := quantCorpusEngine(t, rand.New(rand.NewSource(9)), 60)
	again := quantCorpusEngine(t, rng, 60)
	for _, sg := range plain.set.Load().segs {
		if sg.sigs != nil {
			t.Fatal("non-quantized engine built signatures")
		}
	}
	for _, q := range []string{"Taliban and Pakistan", "Clinton and Sanders", "markets"} {
		a, err := plain.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := again.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("float path drifted between identical builds:\n%v\nvs\n%v", a, b)
		}
	}
}

// TestQuantizedPureBONBridgesVocabulary mirrors the paper's β=1 case study
// on the quantized path: the query shares entities (not keywords) with the
// related bombing story, and quantized BON must still surface it while
// keeping the entity-disjoint business story out.
func TestQuantizedPureBONBridgesVocabulary(t *testing.T) {
	g, arts := corpus.Sample()
	e := New(g, Config{Beta: 1, Model: LCAG, MaxDepth: 6}, WithQuantizedEmbeddings())
	for _, a := range arts {
		if err := e.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	res, err := e.Search("Clashes between Taliban and Pakistan forces in Upper Dir and Swat Valley.", 4)
	if err != nil {
		t.Fatal(err)
	}
	ranked := map[int]bool{}
	for _, r := range res {
		ranked[r.ID] = true
	}
	if !ranked[1] {
		t.Fatalf("quantized β=1 failed to retrieve the related bombing story: %+v", res)
	}
	if ranked[7] {
		t.Fatalf("business story leaked into quantized embedding-only results: %+v", res)
	}
}

// TestQuantizedSaveLoadRoundTrip: a quantized engine's snapshot (NLEMB2)
// reloads with identical results; the same snapshot loaded without the
// option drops the signatures and serves the float path; and a version-1
// snapshot from a non-quantized engine loaded with the option re-encodes
// signatures and matches a natively quantized engine exactly.
func TestQuantizedSaveLoadRoundTrip(t *testing.T) {
	g, arts := corpus.Sample()
	addAll := func(e *Engine) {
		t.Helper()
		for _, a := range arts {
			if err := e.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Build(); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{Beta: 1, Model: LCAG, MaxDepth: 6}
	quantized := New(g, cfg, WithQuantizedEmbeddings())
	addAll(quantized)
	plain := New(g, cfg)
	addAll(plain)
	const q = "Clashes between Taliban and Pakistan forces in Upper Dir and Swat Valley."
	want, err := quantized.Search(q, 4)
	if err != nil {
		t.Fatal(err)
	}

	qdir := t.TempDir()
	if err := quantized.Save(qdir); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Load(qdir, g, WithQuantizedEmbeddings())
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range reloaded.set.Load().segs {
		if sg.sigs == nil {
			t.Fatal("quantized snapshot reloaded without signatures")
		}
	}
	if got, err := reloaded.Search(q, 4); err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("quantized round trip drifted (err=%v):\n%v\nvs\n%v", err, got, want)
	}

	// The same NLEMB2 snapshot without the option: signatures dropped,
	// float BON path serves, matching the never-quantized engine.
	asPlain, err := Load(qdir, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range asPlain.set.Load().segs {
		if sg.sigs != nil {
			t.Fatal("signatures kept despite quantization being off")
		}
	}
	wantPlain, err := plain.Search(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := asPlain.Search(q, 4); err != nil || !reflect.DeepEqual(got, wantPlain) {
		t.Fatalf("quantized snapshot without option drifted from float engine (err=%v):\n%v\nvs\n%v", err, got, wantPlain)
	}

	// A version-1 snapshot (non-quantized engine) loaded with the option:
	// signatures re-encoded from the embeddings, results match the
	// natively quantized engine.
	pdir := t.TempDir()
	if err := plain.Save(pdir); err != nil {
		t.Fatal(err)
	}
	upgraded, err := Load(pdir, g, WithQuantizedEmbeddings())
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range upgraded.set.Load().segs {
		if sg.sigs == nil {
			t.Fatal("version-1 snapshot did not re-encode signatures")
		}
	}
	if got, err := upgraded.Search(q, 4); err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("upgraded snapshot drifted from native quantized engine (err=%v):\n%v\nvs\n%v", err, got, want)
	}
}
