package newslink

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"newslink/internal/kg"
)

// Manifest access for the cluster tier.
//
// A scatter-gather router partitions a snapshot by segment: it reads
// the manifest (meta.json), assigns contiguous segment groups to shard
// workers, and each worker restores only its slice via LoadSegments.
// Because segments are content-addressed and immutable, a worker can
// fetch missing artifact files from any peer that holds them and verify
// them against the manifest checksums before loading — the same
// guarantees Load gives a whole snapshot, per segment.

// Manifest is the snapshot manifest (meta.json) of a compatible snapshot
// (version 4 or 5): the engine config, the graph fingerprint, the ordered
// segment list and per-artifact checksums.
type Manifest = snapshotMeta

// ManifestSegment describes one segment of a snapshot: its
// content-derived artifact ID, its documents in segment order, and the
// tombstone bitmap (index.Bitmap codec, base64; empty when nothing is
// deleted).
type ManifestSegment = segmentMeta

// GraphFingerprint is the structural fingerprint binding a snapshot to
// the knowledge graph it was built on.
type GraphFingerprint = graphPrint

// FingerprintGraph computes the structural fingerprint Load and
// LoadSegments verify against.
func FingerprintGraph(g *kg.Graph) GraphFingerprint { return fingerprint(g) }

// ReadManifest reads and validates the manifest of the snapshot at dir.
// A version mismatch returns ErrSnapshotVersion; artifact files are not
// verified (LoadSegments verifies the ones it loads).
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: parsing meta.json: %v", ErrSnapshotCorrupt, err)
	}
	if !snapshotCompatible(m.Version) {
		return nil, fmt.Errorf("%w: snapshot version %d, want %d..%d", ErrSnapshotVersion, m.Version, minSnapshotVersion, snapshotVersion)
	}
	return &m, nil
}

// SegmentFileNames returns the artifact file names a segment with the
// given content ID owns inside a snapshot directory.
func SegmentFileNames(id string) []string {
	out := make([]string, len(segmentSuffixes))
	for i, suffix := range segmentSuffixes {
		out[i] = segFileName(id, suffix)
	}
	return out
}

// ChecksumFile streams one artifact file through CRC32-C and returns the
// checksum in the manifest's encoding (8 hex digits), for verifying a
// fetched artifact before loading it.
func ChecksumFile(path string) (string, error) { return fileChecksum(path) }

// LoadSegments restores an engine over a subset of a snapshot's segments
// — a shard worker's slice — reading the artifacts from dir fully into
// memory. g must match the snapshot's graph fingerprint print; every
// referenced artifact is checksum-verified against checksums before any
// state is built, with the same typed errors as Load. The restored
// engine serves reads only: no write-ahead log or ingest pipeline is
// armed, matching the immutability of the assignment (a new snapshot
// means a new assignment).
func LoadSegments(dir string, g *kg.Graph, print GraphFingerprint, cfg Config, segs []ManifestSegment, checksums map[string]string, opts ...Option) (*Engine, error) {
	if got := fingerprint(g); got != print {
		return nil, fmt.Errorf("newslink: knowledge graph mismatch: snapshot %+v, graph %+v", print, got)
	}
	verified := make(map[string]bool)
	for _, sm := range segs {
		for _, suffix := range segmentSuffixes {
			name := segFileName(sm.ID, suffix)
			if verified[name] {
				continue
			}
			want, ok := checksums[name]
			if !ok {
				return nil, fmt.Errorf("%w: no checksum for %s", ErrSnapshotCorrupt, name)
			}
			got, err := fileChecksum(filepath.Join(dir, name))
			if err != nil {
				return nil, fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, name, err)
			}
			if got != want {
				return nil, fmt.Errorf("%w: %s checksum %s, want %s", ErrSnapshotCorrupt, name, got, want)
			}
			verified[name] = true
		}
	}
	e := New(g, append([]Option{cfg}, opts...)...)
	loaded := make([]*segment, 0, len(segs))
	for _, sm := range segs {
		seg, err := loadSegment(dir, sm, checksums, g, false)
		if err != nil {
			closeSegments(loaded)
			return nil, err
		}
		loaded = append(loaded, seg)
	}
	e.mu.Lock()
	e.publishLocked(loaded)
	e.mu.Unlock()
	return e, nil
}
