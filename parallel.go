package newslink

import (
	"runtime"
	"sync"

	"newslink/internal/core"
)

// AddAll indexes a batch of documents, running the NLP and NE components
// concurrently across workers (Section VII-G of the paper: "for processing
// corpus data, we can easily parallelize the process"). Results are
// identical to sequential Add calls in the same order; only wall-clock time
// changes. workers <= 0 selects GOMAXPROCS. After Build, the batch lands in
// the open segment like individual Adds. A duplicate document ID aborts the
// batch at the offending document; documents before it stay indexed.
func (e *Engine) AddAll(docs []Document, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	type analyzed struct {
		emb   *core.DocEmbedding
		terms []string
	}
	// Analysis reads only immutable engine state, so it runs outside the
	// lock and searches proceed while the batch embeds.
	out := make([]analyzed, len(docs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				emb, terms := e.analyze(docs[i].Text)
				out[i] = analyzed{emb, terms}
			}
		}()
	}
	for i := range docs {
		next <- i
	}
	close(next)
	wg.Wait()
	// Indexing is order-dependent (DocIDs are positional), so it stays
	// sequential; it is a tiny fraction of the embedding cost (Figure 7).
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, doc := range docs {
		if err := e.addLocked(doc, out[i].emb, out[i].terms); err != nil {
			return err
		}
	}
	return nil
}
