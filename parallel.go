package newslink

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"newslink/internal/core"
	"newslink/internal/faults"
	"newslink/internal/index"
	"newslink/internal/obs"
	"newslink/internal/search"
	"newslink/internal/wal"
)

// retrieval is the outcome of the parallel BOW/BON fan-out of one search:
// the two candidate lists plus whether the request degraded to BOW-only
// ranking (and why).
type retrieval struct {
	bow, bon []search.Hit
	degraded bool
	reason   string
}

// retrieve runs BOW and BON retrieval for one search request. The two
// stages touch disjoint indexes and run in parallel goroutines; on
// corpora past shardedSearchMinDocs each traversal is itself sharded
// across GOMAXPROCS workers.
//
// In the fused case (0 < β < 1) the BON stage is sacrificial: it runs
// under its own deadline when SetBONTimeout is configured, and a BON
// error or stage timeout degrades the request to BOW-only ranking
// instead of failing it — the text ranking is independently useful and a
// degraded reply beats a 5xx. A request whose own context ended still
// fails with that context's error, and single-sided requests (β = 0 or
// β = 1) keep strict error semantics: they have nothing to fall back to.
func (e *Engine) retrieve(ctx context.Context, snap *segmentSet, qEmb *core.DocEmbedding, qTerms []string, beta float64, pool int, flt *queryFilter) (retrieval, error) {
	tr := obs.FromContext(ctx)
	runBOW := beta < 1
	runBON := beta > 0 && qEmb != nil
	// A filtered request traverses the same indexes behind a composed mask
	// (index.Filtered): statistics and block bounds are those of the full
	// corpus, so scoring and pruning are unchanged; only candidate
	// admission consults the filter. Unfiltered requests keep the raw
	// sources.
	text, node := snap.text, snap.node
	if flt != nil {
		text = index.NewFiltered(text, flt)
		node = index.NewFiltered(node, flt)
	}
	var bow, bon []search.Hit
	var bowErr, bonErr error
	retrieveBOW := func(ctx context.Context) {
		sp := tr.Start(obs.StageBOW)
		var st search.RetrievalStats
		bow, st, bowErr = topKAuto(ctx, text, search.NewBM25(text), search.NewQuery(qTerms), pool)
		e.met.blocksObserve(st)
		d := sp.End(retrievalAttrs(len(bow), st)...)
		e.met.stageObserve(obs.StageBOW, d)
	}
	retrieveBON := func(ctx context.Context) {
		sp := tr.Start(obs.StageBON)
		var st search.RetrievalStats
		defer func() {
			e.met.blocksObserve(st)
			d := sp.End(retrievalAttrs(len(bon), st)...)
			e.met.stageObserve(obs.StageBON, d)
		}()
		if bonErr = faults.FireCtx(ctx, faults.BONStage); bonErr != nil {
			return
		}
		if e.opts.quantizedEmb {
			// Quantized BON: int8 signature scan plus exact rescore instead
			// of traversing node postings (quant.go). Same Hit ordering
			// contract, so fusion and degradation downstream are oblivious.
			bon, st, bonErr = quantTopK(ctx, snap, docSignature(qEmb), pool, flt)
			return
		}
		nq := make(search.Query, len(qEmb.Counts))
		for n, c := range qEmb.Counts {
			nq[nodeTerm(n)] = float64(c)
		}
		// BON scoring uses BM25 with b=0 and a small k1: a subgraph
		// embedding's size is structural, not verbosity (no length
		// penalty), and node frequencies saturate quickly so BON behaves
		// as an idf-weighted node-set match. This keeps Equation 3's text
		// ranking authoritative within clusters of same-event stories.
		bonScorer := search.NewBM25(node)
		bonScorer.B = 0
		bonScorer.K1 = 0.4
		bon, st, bonErr = topKAuto(ctx, node, bonScorer, nq, pool)
	}
	switch {
	case runBOW && runBON:
		bctx, bcancel := ctx, context.CancelFunc(func() {})
		if d := time.Duration(e.bonTimeout.Load()); d > 0 {
			bctx, bcancel = context.WithTimeout(ctx, d)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			retrieveBON(bctx)
		}()
		retrieveBOW(ctx)
		wg.Wait()
		bcancel()
		if bowErr != nil {
			return retrieval{}, bowErr
		}
		if bonErr != nil {
			if err := ctx.Err(); err != nil {
				return retrieval{}, err
			}
			reason := DegradedBONError
			if errors.Is(bonErr, context.DeadlineExceeded) {
				reason = DegradedBONTimeout
			}
			return retrieval{bow: bow, degraded: true, reason: reason}, nil
		}
	case runBOW:
		retrieveBOW(ctx)
	case runBON:
		retrieveBON(ctx)
	}
	if bowErr != nil {
		return retrieval{}, bowErr
	}
	if bonErr != nil {
		return retrieval{}, bonErr
	}
	return retrieval{bow: bow, bon: bon}, nil
}

// retrievalAttrs converts retrieval statistics into trace span attributes.
func retrievalAttrs(candidates int, st search.RetrievalStats) []obs.Attr {
	return []obs.Attr{
		obs.Int("candidates", candidates),
		obs.Int("terms", st.Terms),
		obs.Int("postings", st.Postings),
		obs.Int("scored", st.Scored),
		obs.Int("pruned", st.Skipped),
		obs.Int("blocks_decoded", st.BlocksDecoded),
		obs.Int("blocks_skipped", st.BlocksSkipped),
		obs.Int("shards", st.Shards),
	}
}

// topKAuto picks the sequential or sharded block-max traversal by corpus
// size. Both return rankings identical to exact TAAT (property-tested);
// block-max additionally leaves provably irrelevant postings blocks
// undecoded (and, on disk-backed snapshots, unread).
func topKAuto(ctx context.Context, idx index.Source, s search.Scorer, q search.Query, k int) ([]search.Hit, search.RetrievalStats, error) {
	if workers := runtime.GOMAXPROCS(0); workers > 1 && idx.NumDocs() >= shardedSearchMinDocs {
		return search.TopKBlockMaxShardedStats(ctx, idx, s, q, k, workers)
	}
	return search.TopKBlockMaxStats(ctx, idx, s, q, k)
}

// AddAll indexes a batch of documents, running the NLP and NE components
// concurrently across workers (Section VII-G of the paper: "for processing
// corpus data, we can easily parallelize the process"). Results are
// identical to sequential Add calls in the same order; only wall-clock time
// changes. workers <= 0 selects GOMAXPROCS. After Build, the batch lands in
// the open segment like individual Adds. A duplicate document ID aborts the
// batch at the offending document; documents before it stay indexed.
func (e *Engine) AddAll(docs []Document, workers int) error {
	// While the async ingest pipeline is armed (post-Build, WithIngestQueue)
	// the batch routes through it document by document, preserving the
	// single WAL/apply total order; the pipeline's applier does its own
	// parallel analysis per micro-batch. The fan-out below covers the main
	// AddAll use — initial corpus loading before Build.
	if e.ingest.Load() != nil {
		for _, doc := range docs {
			if err := e.Add(doc); err != nil {
				return err
			}
		}
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	type analyzed struct {
		emb   *core.DocEmbedding
		terms []string
	}
	// Analysis reads only immutable engine state, so it runs outside the
	// lock and searches proceed while the batch embeds.
	out := make([]analyzed, len(docs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				emb, terms := e.analyze(docs[i].Text)
				out[i] = analyzed{emb, terms}
			}
		}()
	}
	for i := range docs {
		next <- i
	}
	close(next)
	wg.Wait()
	// Indexing is order-dependent (DocIDs are positional), so it stays
	// sequential; it is a tiny fraction of the embedding cost (Figure 7).
	// Post-Build batches are WAL-logged first (one group-commit fsync for
	// the whole batch), so every document of an acknowledged batch
	// survives a crash; replay skips the duplicates of a batch that
	// failed midway, converging to the same state this call left behind.
	e.walMu.Lock()
	defer e.walMu.Unlock()
	if e.wal != nil && !e.walClosed && e.set.Load() != nil {
		var last wal.Pos
		for _, doc := range docs {
			pos, err := e.wal.Write(encodeWALOp(walOpAdd, doc))
			if err != nil {
				return err
			}
			last = pos
		}
		if err := e.wal.WaitDurable(last); err != nil {
			return err
		}
	} else if e.walClosed {
		return ErrClosed
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, doc := range docs {
		if err := e.addLocked(doc, out[i].emb, out[i].terms); err != nil {
			return err
		}
	}
	return nil
}
