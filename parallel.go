package newslink

import (
	"runtime"
	"sync"

	"newslink/internal/core"
)

// AddAll indexes a batch of documents, running the NLP and NE components
// concurrently across workers (Section VII-G of the paper: "for processing
// corpus data, we can easily parallelize the process"). Results are
// identical to sequential Add calls in the same order; only wall-clock time
// changes. workers <= 0 selects GOMAXPROCS. AddAll fails after Build.
func (e *Engine) AddAll(docs []Document, workers int) error {
	e.ensureSegment()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	type analyzed struct {
		emb   *core.DocEmbedding
		terms []string
	}
	out := make([]analyzed, len(docs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				emb, terms := e.analyze(docs[i].Text)
				out[i] = analyzed{emb, terms}
			}
		}()
	}
	for i := range docs {
		next <- i
	}
	close(next)
	wg.Wait()
	// Indexing is order-dependent (DocIDs are positional), so it stays
	// sequential; it is a tiny fraction of the embedding cost (Figure 7).
	for i, doc := range docs {
		e.docs = append(e.docs, doc)
		e.embeddings = append(e.embeddings, out[i].emb)
		e.textB.Add(out[i].terms)
		e.nodeB.AddWeighted(nodeWeights(out[i].emb))
	}
	if e.built {
		e.pending += len(docs)
	}
	return nil
}
