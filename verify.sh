#!/bin/sh
# Full verification gate: static checks, build, and the complete test
# suite under the race detector (the concurrency tests in
# concurrency_test.go are only meaningful with -race).
set -eux

cd "$(dirname "$0")"

go vet ./...
go build ./...
go test -race ./...
