#!/bin/sh
# Full verification gate: formatting, static checks, build, and the
# complete test suite under the race detector (the concurrency tests in
# concurrency_test.go are only meaningful with -race).
#
# CI (.github/workflows/ci.yml) invokes this same script, so the local and
# CI gates cannot drift. Strictly POSIX sh: no bashisms, and the repo root
# is resolved without relying on the caller's working directory or an
# inherited CDPATH (which would make `cd` print the target or resolve it
# against unrelated directories).
set -eu

dir=$(CDPATH='' cd -- "$(dirname -- "$0")" && pwd)
cd -- "$dir"

echo '>> gofmt'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    printf 'gofmt: the following files need formatting:\n%s\n' "$unformatted" >&2
    exit 1
fi

echo '>> go vet ./...'
go vet ./...

echo '>> go build ./...'
go build ./...

echo '>> go test -race ./...'
go test -race ./...

echo '>> verify.sh: all checks passed'
