package newslink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"newslink/internal/core"
	"newslink/internal/faults"
	"newslink/internal/wal"
)

// Streaming ingestion (DESIGN.md §13). Two independent options turn the
// batch-indexed engine into one that is safe and fast under a sustained
// news firehose:
//
//   - WithWAL(dir) arms a crash-safe write-ahead log: every post-Build
//     write is encoded as one record and group-commit fsynced before it is
//     acknowledged; Build and Load replay the log so acknowledged writes
//     survive a crash between snapshots, and Save rotates + prunes it so
//     the log never grows past one snapshot interval.
//
//   - WithIngestQueue(n) arms the async pipeline: Ingest acknowledges
//     after durability and queueing, and a single applier goroutine folds
//     queued writes into micro-batches — NLP/NER analysis fans out across
//     cores outside the engine lock, then the whole batch is indexed under
//     one lock acquisition and sealed as one segment, which the PR 5
//     tiered merge policy keeps compacted. A full queue sheds writes with
//     ErrIngestOverload instead of building an unbounded backlog.
//
// Lock order: walMu strictly before e.mu, everywhere. Every write path
// assigns its WAL record and its queue slot (or its direct apply) under
// walMu, so WAL order, queue order and apply order are one total order —
// replaying the log over the same starting state converges to the same
// searchable state as the original run.

// WAL record ops. A record is [op byte][zigzag-varint doc ID] followed,
// for document-carrying ops, by two length-prefixed strings (title, text)
// and a zigzag-varint event timestamp (Document.Time). Records written
// before the timestamp existed simply end after the text; decode treats
// the absent field as Time 0, so pre-existing logs replay unchanged.
const (
	walOpAdd    byte = 1 // strict add: replay skips duplicates, as Add errors on them
	walOpUpsert byte = 2 // tombstone any previous version, then add
	walOpDelete byte = 3 // tombstone: replay skips unknown IDs, as Delete errors on them
)

// encodeWALOp renders one write as a WAL record payload.
func encodeWALOp(op byte, doc Document) []byte {
	n := 1 + binary.MaxVarintLen64
	if op != walOpDelete {
		n += 3*binary.MaxVarintLen64 + len(doc.Title) + len(doc.Text)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, op)
	buf = binary.AppendVarint(buf, int64(doc.ID))
	if op != walOpDelete {
		buf = binary.AppendUvarint(buf, uint64(len(doc.Title)))
		buf = append(buf, doc.Title...)
		buf = binary.AppendUvarint(buf, uint64(len(doc.Text)))
		buf = append(buf, doc.Text...)
		buf = binary.AppendVarint(buf, doc.Time)
	}
	return buf
}

// decodeWALOp parses one WAL record payload. The record already passed
// the log's CRC, so a malformed payload means a codec bug or version
// skew — surfaced as ErrWALCorrupt, never applied half-parsed.
func decodeWALOp(p []byte) (byte, Document, error) {
	fail := func(what string) (byte, Document, error) {
		return 0, Document{}, fmt.Errorf("%w: %s", ErrWALCorrupt, what)
	}
	if len(p) == 0 {
		return fail("empty record")
	}
	op := p[0]
	p = p[1:]
	id, n := binary.Varint(p)
	if n <= 0 {
		return fail("truncated document id")
	}
	p = p[n:]
	doc := Document{ID: int(id)}
	if op == walOpDelete {
		if len(p) != 0 {
			return fail("trailing bytes after delete")
		}
		return op, doc, nil
	}
	readString := func() (string, bool) {
		l, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < l {
			return "", false
		}
		s := string(p[n : n+int(l)])
		p = p[n+int(l):]
		return s, true
	}
	var ok bool
	if doc.Title, ok = readString(); !ok {
		return fail("truncated title")
	}
	if doc.Text, ok = readString(); !ok {
		return fail("truncated text")
	}
	if len(p) > 0 {
		// The event timestamp; absent in records written before it existed
		// (those end at the text), so only decode it when bytes remain.
		t, n := binary.Varint(p)
		if n <= 0 {
			return fail("truncated timestamp")
		}
		doc.Time = t
		p = p[n:]
	}
	if len(p) != 0 {
		return fail("trailing bytes after document")
	}
	return op, doc, nil
}

// ingestItem is one queued write.
type ingestItem struct {
	op  byte
	doc Document
	// res, when non-nil, receives the apply result: the synchronous APIs
	// (Add, Update, Delete) route through the queue while the pipeline is
	// armed — preserving the single total order — and wait here for their
	// documented return value. Ingest leaves it nil and acknowledges at
	// durability instead.
	res chan error
}

// ingestPipeline is the armed async ingest machinery: the bounded queue
// and its single applier goroutine. Queue admission (and WAL logging)
// happens under e.walMu; the applier applies under e.mu only, so Save can
// block admissions and wait for the queue to drain without deadlock.
type ingestPipeline struct {
	e     *Engine
	ch    chan ingestItem
	batch int

	// closed and enqueued are guarded by e.walMu (admission order is WAL
	// order); applied is guarded by mu, with cond broadcast per batch so
	// FlushIngest and Save's drain can wait for applied == enqueued.
	closed   bool
	enqueued int64
	mu       sync.Mutex
	applied  int64
	cond     *sync.Cond

	// drainRate is an exponentially weighted moving average of applied
	// documents per second, and lastApply the previous batch's completion
	// time; both guarded by mu. The rate feeds the HTTP layer's
	// Retry-After hint when the queue sheds (IngestRetryAfter).
	drainRate float64
	lastApply time.Time

	// done closes when the applier goroutine exits.
	done chan struct{}
}

func newIngestPipeline(e *Engine, queue, batch int) *ingestPipeline {
	p := &ingestPipeline{
		e:     e,
		ch:    make(chan ingestItem, queue),
		batch: batch,
		done:  make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// submit is the single entry of every write while the pipeline is armed:
// admission check, WAL logging and queueing under one walMu critical
// section (one total order), then — outside the lock — the durability
// wait (group commit batches it with concurrent submitters) and, for
// synchronous callers, the apply result.
func (p *ingestPipeline) submit(op byte, doc Document, wait bool) error {
	var res chan error
	if wait {
		res = make(chan error, 1)
	}
	e := p.e
	e.walMu.Lock()
	if p.closed {
		e.walMu.Unlock()
		return ErrClosed
	}
	if len(p.ch) == cap(p.ch) {
		e.walMu.Unlock()
		e.met.ingestShed.Inc()
		return ErrIngestOverload
	}
	var pos wal.Pos
	logged := false
	if e.wal != nil {
		var err error
		if pos, err = e.wal.Write(encodeWALOp(op, doc)); err != nil {
			e.walMu.Unlock()
			return err
		}
		logged = true
	}
	p.enqueued++
	// Cannot block: capacity was checked above and walMu serializes senders.
	p.ch <- ingestItem{op: op, doc: doc, res: res}
	e.met.ingestQueued.Inc()
	e.met.ingestDepth.Set(int64(len(p.ch)))
	e.walMu.Unlock()
	if logged {
		if err := e.wal.WaitDurable(pos); err != nil {
			return err
		}
	}
	if res != nil {
		return <-res
	}
	return nil
}

// run is the applier goroutine: collect up to batch queued writes, apply
// them as one micro-batch, repeat until the queue is closed (Close drains
// it first, so a closed channel is an empty one).
func (p *ingestPipeline) run() {
	defer close(p.done)
	for {
		first, ok := <-p.ch
		if !ok {
			return
		}
		batch := make([]ingestItem, 1, p.batch)
		batch[0] = first
	collect:
		for len(batch) < p.batch {
			select {
			case it, ok := <-p.ch:
				if !ok {
					break collect
				}
				batch = append(batch, it)
			default:
				break collect
			}
		}
		p.apply(batch)
	}
}

// apply indexes one micro-batch: analysis fans out across cores against
// immutable engine state, then every write lands under a single e.mu
// acquisition and the batch is sealed as one segment (refreshLocked runs
// the tiered merge policy, bounding the segment count under sustained
// ingest). The IngestApply fault point models a crash in the
// acknowledged-but-unapplied window: an injected error drops the batch
// from memory — exactly what a real crash does — and the crash-recovery
// tests prove the WAL replays it.
func (p *ingestPipeline) apply(batch []ingestItem) {
	e := p.e
	if err := faults.Fire(faults.IngestApply); err != nil {
		for _, it := range batch {
			if it.res != nil {
				it.res <- err
			}
		}
	} else {
		analyzed := e.analyzeBatch(batch)
		e.mu.Lock()
		for i, it := range batch {
			var ierr error
			switch it.op {
			case walOpAdd:
				ierr = e.addLocked(it.doc, analyzed[i].emb, analyzed[i].terms)
			case walOpUpsert:
				ierr = e.upsertLocked(it.doc, analyzed[i].emb, analyzed[i].terms)
			case walOpDelete:
				ierr = e.deleteLocked(it.doc.ID)
			}
			if it.res != nil {
				it.res <- ierr
			}
		}
		e.refreshLocked()
		e.mu.Unlock()
	}
	e.met.ingestApplied.Add(int64(len(batch)))
	e.met.ingestDepth.Set(int64(len(p.ch)))
	now := time.Now()
	p.mu.Lock()
	p.applied += int64(len(batch))
	if !p.lastApply.IsZero() {
		// The inter-batch gap covers apply plus collection time, so
		// batch/gap is end-to-end drain throughput, not raw apply speed.
		if dt := now.Sub(p.lastApply).Seconds(); dt > 0 {
			rate := float64(len(batch)) / dt
			if p.drainRate == 0 {
				p.drainRate = rate
			} else {
				p.drainRate = 0.8*p.drainRate + 0.2*rate
			}
		}
	}
	p.lastApply = now
	p.mu.Unlock()
	p.cond.Broadcast()
}

// IngestRetryAfter estimates how long a shed writer should back off, in
// whole seconds: current queue depth over the observed drain rate,
// clamped to [1, 60]. It returns 0 while the pipeline is unarmed or has
// not applied enough batches to know its rate — callers should then fall
// back to a fixed hint.
func (e *Engine) IngestRetryAfter() int {
	p := e.ingest.Load()
	if p == nil {
		return 0
	}
	p.mu.Lock()
	rate := p.drainRate
	p.mu.Unlock()
	return retryAfterSeconds(len(p.ch), rate)
}

// retryAfterSeconds converts a queue depth and a drain rate (docs/sec)
// into a bounded whole-second backoff hint; 0 means "no estimate".
func retryAfterSeconds(depth int, rate float64) int {
	if rate <= 0 {
		return 0
	}
	secs := int(math.Ceil(float64(depth) / rate))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// analyzedDoc is one batch item's NLP/NER output.
type analyzedDoc struct {
	emb   *core.DocEmbedding
	terms []string
}

// analyzeBatch runs the NLP and NE components over a micro-batch,
// fanning out across GOMAXPROCS workers (deletes need no analysis).
// Analysis reads only immutable engine state, so searches and queue
// admissions proceed concurrently.
func (e *Engine) analyzeBatch(batch []ingestItem) []analyzedDoc {
	out := make([]analyzedDoc, len(batch))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 {
		for i, it := range batch {
			if it.op != walOpDelete {
				out[i].emb, out[i].terms = e.analyze(it.doc.Text)
			}
		}
		return out
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i].emb, out[i].terms = e.analyze(batch[i].doc.Text)
			}
		}()
	}
	for i, it := range batch {
		if it.op != walOpDelete {
			next <- i
		}
	}
	close(next)
	wg.Wait()
	return out
}

// waitApplied blocks until the applier has applied at least target writes.
func (p *ingestPipeline) waitApplied(target int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.applied < target {
		p.cond.Wait()
	}
}

// drainLocked waits until every admitted write is applied. Callers hold
// e.walMu, which blocks new admissions — the applier needs only e.mu, so
// it keeps draining. Save runs this before capturing the segment set and
// rotating the log: anything admitted (and logged to the old generation)
// must be in the capture, or pruning the old generation would lose it.
func (p *ingestPipeline) drainLocked() {
	p.waitApplied(p.enqueued)
}

// Ingest enqueues one document upsert for asynchronous indexing and
// returns once the write is acknowledged: durably logged (when WithWAL is
// armed) and admitted to the bounded queue. The document becomes
// searchable when its micro-batch is applied — typically milliseconds;
// FlushIngest waits for everything admitted so far. A full queue returns
// ErrIngestOverload without logging or queueing anything.
//
// Without WithIngestQueue, Ingest is a synchronous upsert (Update), so
// callers can treat it as the streaming write API at either setting.
// Like Update it requires a built engine.
func (e *Engine) Ingest(doc Document) error {
	if p := e.ingest.Load(); p != nil {
		return p.submit(walOpUpsert, doc, false)
	}
	return e.Update(doc)
}

// FlushIngest blocks until every write admitted before the call is
// applied and searchable. A no-op without WithIngestQueue.
func (e *Engine) FlushIngest() {
	p := e.ingest.Load()
	if p == nil {
		return
	}
	e.walMu.Lock()
	target := p.enqueued
	e.walMu.Unlock()
	p.waitApplied(target)
}

// startDurabilityLocked opens the write-ahead log (replaying whatever a
// previous run left) and arms the ingest pipeline, per the engine's
// options. Build and Load call it once the initial segment set is
// published; callers hold e.walMu (but not e.mu — replay applies records
// under e.mu itself).
func (e *Engine) startDurabilityLocked() error {
	if e.opts.walDir != "" {
		l, err := wal.Open(e.opts.walDir, wal.Options{
			OnFsync: func(d time.Duration) { e.met.walFsyncSeconds.Observe(d.Seconds()) },
			OnAppend: func(n int) {
				e.met.walAppends.Inc()
				e.met.walBytes.Add(int64(n))
			},
		})
		if err != nil {
			return walErr(err)
		}
		if err := e.replayWAL(l); err != nil {
			l.Close()
			return err
		}
		e.wal = l
	}
	if e.opts.ingestQueue > 0 {
		p := newIngestPipeline(e, e.opts.ingestQueue, e.opts.ingestBatch)
		e.ingest.Store(p)
		go p.run()
	}
	return nil
}

// walErr maps the wal package's corruption sentinel to the public one.
func walErr(err error) error {
	if errors.Is(err, wal.ErrCorrupt) {
		return fmt.Errorf("%w: %v", ErrWALCorrupt, err)
	}
	return err
}

// replayWAL applies every logged write, in log order, with the semantics
// of the original call: strict adds skip duplicates, deletes skip unknown
// IDs (both mirror an original call that returned an error without
// changing state), upserts replace. Same starting state + same record
// sequence therefore converges to the same searchable state the original
// run had — the crash-recovery tests assert it down to search results.
func (e *Engine) replayWAL(l *wal.Log) error {
	n, err := l.Replay(func(payload []byte) error {
		op, doc, err := decodeWALOp(payload)
		if err != nil {
			return err
		}
		var an analyzedDoc
		if op != walOpDelete {
			an.emb, an.terms = e.analyze(doc.Text)
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		switch op {
		case walOpAdd:
			if err := e.addLocked(doc, an.emb, an.terms); err != nil && !errors.Is(err, ErrDuplicateID) {
				return err
			}
		case walOpUpsert:
			return e.upsertLocked(doc, an.emb, an.terms)
		case walOpDelete:
			if err := e.deleteLocked(doc.ID); err != nil && !errors.Is(err, ErrUnknownDoc) {
				return err
			}
		default:
			return fmt.Errorf("%w: unknown op %d", ErrWALCorrupt, op)
		}
		return nil
	})
	if err != nil {
		return walErr(err)
	}
	if n > 0 {
		e.met.walReplayed.Add(int64(n))
		e.mu.Lock()
		e.refreshLocked()
		e.mu.Unlock()
	}
	return nil
}

// logSyncLocked appends one write to the WAL and waits for durability —
// the synchronous write path used when no ingest queue is armed. Callers
// hold e.walMu (so log order is apply order) but not e.mu. Pre-Build
// writes are not logged: the initial corpus is covered by Build/Save, not
// the log.
func (e *Engine) logSyncLocked(op byte, doc Document) error {
	if e.walClosed {
		// A closed log can no longer make the write durable; failing is
		// honest, silently-not-logging is not. Engines that never armed a
		// WAL keep accepting writes after Close as before.
		return ErrClosed
	}
	if e.wal == nil || e.set.Load() == nil {
		return nil
	}
	return e.wal.Append(encodeWALOp(op, doc))
}

// stopIngest shuts the pipeline and the log down: drain the queue, stop
// the applier, close the log. Called by Close; further writes return
// ErrClosed.
func (e *Engine) stopIngest() error {
	if p := e.ingest.Load(); p != nil {
		e.FlushIngest()
		e.walMu.Lock()
		if !p.closed {
			p.closed = true
			close(p.ch)
		}
		e.walMu.Unlock()
		<-p.done
	}
	e.walMu.Lock()
	defer e.walMu.Unlock()
	if e.wal != nil {
		err := e.wal.Close()
		e.wal = nil
		e.walClosed = true
		return err
	}
	return nil
}
