// Package newslink is the public API of the NewsLink news-search framework
// (Yang, Li, Tung: "NewsLink: Empowering Intuitive News Search with
// Knowledge Graphs", ICDE 2021).
//
// NewsLink embeds a text query and every news document into subgraph
// embeddings of a knowledge graph and ranks documents by a combination of
// textual (Bag-Of-Words) and graph (Bag-Of-Node) similarity:
//
//	F(Tq, Tc) = (1-β)·F_BOW + β·F_BON        (Equation 3 of the paper)
//
// The overlap of two embeddings induces relationship paths that explain WHY
// a result is related to the query.
//
// Basic usage:
//
//	g, articles := corpus-of-your-choice
//	e := newslink.New(g, newslink.DefaultConfig())
//	for _, a := range articles {
//	    e.Add(newslink.Document{ID: a.ID, Title: a.Title, Text: a.Text})
//	}
//	e.Build()
//	results, _ := e.Search("Military conflicts between Pakistan and Taliban", 5)
//	exp, _ := e.Explain(query, results[0].ID, 3)
//
// Servers that need cancellation or per-request parameters use the
// request-scoped API instead:
//
//	results, err := e.SearchContext(ctx, newslink.Query{Text: q, K: 5, Beta: newslink.BetaOverride(1)})
//	exp, err := e.ExplainContext(ctx, q, results[0].ID, 3)
package newslink

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"newslink/internal/core"
	"newslink/internal/index"
	"newslink/internal/kg"
	"newslink/internal/nlp"
	"newslink/internal/obs"
	"newslink/internal/search"
	"newslink/internal/wal"
)

// EmbeddingModel selects the subgraph embedding model of the NE component.
type EmbeddingModel = core.Model

// Embedding models.
const (
	// LCAG is the paper's Lowest Common Ancestor Graph model.
	LCAG = core.ModelLCAG
	// TreeEmb is the tree-based Group-Steiner approximation baseline.
	TreeEmb = core.ModelTree
)

// Config parameterizes an Engine.
type Config struct {
	// Beta is the Equation 3 fusion weight: 0 = pure text (Lucene-style
	// BM25), 1 = pure subgraph embeddings. The paper's best setting is 0.2.
	Beta float64
	// Model is the subgraph embedding model (LCAG by default).
	Model EmbeddingModel
	// MaxDepth bounds label-to-root distances in the KG (0 = unbounded).
	MaxDepth float64
	// MaxExpansions bounds the per-segment traversal budget (0 = default).
	MaxExpansions int
	// PoolDepth is the per-index candidate pool for fusion (>= k; default 100).
	PoolDepth int
}

// DefaultConfig returns the paper's recommended configuration:
// NewsLink(0.2) with the LCAG model.
func DefaultConfig() Config {
	return Config{Beta: 0.2, Model: LCAG, MaxDepth: 6, PoolDepth: 100}
}

// Document is one news document to index.
type Document struct {
	ID    int
	Title string
	Text  string
	// Time is the document's event timestamp (Unix seconds, or any
	// monotone int64 the caller chooses; 0 = unknown). It is stored in the
	// per-segment time column, persisted with snapshots (v5), replayed
	// through the WAL, and compared against Query.After/Before temporal
	// filters as a plain value — an untimestamped document (Time 0) is
	// excluded by any After bound and kept by any Before bound.
	Time int64 `json:",omitempty"`
}

// Query is one search request for SearchContext. The zero values of the
// optional fields select the engine's Config, so Query{Text: q, K: 10} is a
// complete request.
type Query struct {
	// Text is the query text.
	Text string
	// K is the number of results to return (required, > 0).
	K int
	// PoolDepth overrides Config.PoolDepth for this request (0 = engine
	// default). The effective pool is never smaller than K and never larger
	// than the corpus.
	PoolDepth int
	// Beta overrides Config.Beta for this request (nil = engine default).
	// Use BetaOverride to build the pointer inline.
	Beta *float64
	// After and Before bound results to documents whose Time lies in the
	// inclusive range [After, Before]; 0 leaves the corresponding side
	// unbounded. Document.Time is compared as a plain value, so
	// untimestamped documents (Time 0) fail any After bound.
	After  int64
	Before int64
	// Entities restricts results to documents whose subgraph embedding
	// contains, for every listed entity label, at least one KG node that
	// label resolves to (must-match facets, conjunctive across labels). A
	// label that resolves to no KG node matches nothing.
	Entities []string
}

// filtered reports whether the request carries any document filter.
func (q Query) filtered() bool {
	return q.After != 0 || q.Before != 0 || len(q.Entities) > 0
}

// BetaOverride returns a per-request β override for Query.Beta.
func BetaOverride(v float64) *float64 { return &v }

// Result is one search hit.
type Result struct {
	ID    int // the Document.ID supplied at Add time
	Title string
	Score float64 // fused Equation 3 score, max-normalized into (0,1]
	// Snippet is the document sentence that best matches the query (empty
	// when the document shares no query terms).
	Snippet string
}

// Degradation reasons reported in SearchResponse.DegradedReason and
// counted by the newslink_search_degraded_total{reason} metric.
const (
	// DegradedBONError: the BON retrieval stage returned an error.
	DegradedBONError = "bon_error"
	// DegradedBONTimeout: the BON retrieval stage exceeded its stage
	// deadline (SetBONTimeout).
	DegradedBONTimeout = "bon_timeout"
)

// SearchResponse is the full outcome of one search request: the ranked
// results plus the degradation status of the fused pipeline.
//
// Equation 3 fuses two independently useful rankings, and the text (BOW)
// side carries no graph dependency — so when the subgraph (BON) side
// fails or is too slow, the engine serves the BOW-only ranking instead of
// failing the request, and reports it here. A degraded response ranks
// exactly like a pure-text (β = 0) query of the same text.
type SearchResponse struct {
	Results []Result
	// Degraded reports that the BON stage failed or timed out and Results
	// carry BOW-only ranking.
	Degraded bool
	// DegradedReason is DegradedBONError or DegradedBONTimeout when
	// Degraded, empty otherwise.
	DegradedReason string
}

// Path is one relationship path presented as evidence: Nodes holds the
// entity labels along the path and Relations the relation name of each hop
// (len(Relations) == len(Nodes)-1). Rendered is a human-readable form like
// "Sanders -[candidate in]-> US presidential election 2016 <-[candidate
// in]- Clinton".
type Path struct {
	Nodes     []string
	Relations []string
	Rendered  string
}

// Explanation is the intuitive evidence for one query/result pair.
type Explanation struct {
	// SharedEntities are labels of KG nodes present in both the query's and
	// the result's subgraph embeddings (the overlap of Figure 1), including
	// induced entities that appear in neither text.
	SharedEntities []string
	// Paths are relationship paths linking query entities to result
	// entities through the overlap (Tables II and VI).
	Paths []Path
}

// Engine indexes a corpus and serves NewsLink searches. It is safe for
// concurrent use: Search, Explain and ExplainDOT are lock-free readers —
// they load the atomically-published segment set and work against that
// immutable view for the whole request — while Add, AddAll, Build,
// Refresh, Delete, Update and Compact serialize on a writer mutex, so
// writes of any kind interleave freely with in-flight queries and a long
// query never blocks indexing.
type Engine struct {
	cfg  Config
	opts engineOptions

	// gs is the atomically-published graph-side state: the knowledge graph
	// with its NLP pipeline and embedder. Queries load it once per request
	// and work against that immutable view; SwapGraph publishes a fresh one
	// and purges the embedding caches.
	gs atomic.Pointer[graphState]

	// set is the published, immutable segment set (segment.go); nil until
	// Build. Readers load it atomically; writers rebuild and swap it under
	// mu.
	set atomic.Pointer[segmentSet]
	// pending counts documents in the open (un-searchable) segment, read
	// lock-free by acquire to decide whether a search must refresh first.
	pending atomic.Int64

	// walMu orders durability: it is taken strictly before mu, and every
	// write path holds it while assigning its write-ahead-log record and
	// its queue slot (or applying directly), so log order, queue order and
	// apply order are one total order. It also guards wal/walClosed and
	// the pipeline's admission state. Nil-WAL engines never contend on it
	// beyond the uncontended lock word.
	walMu     sync.Mutex
	wal       *wal.Log
	walClosed bool
	// ingest is the armed async pipeline (WithIngestQueue), nil otherwise;
	// published after Build/Load and read lock-free by the write APIs.
	ingest atomic.Pointer[ingestPipeline]

	// mu serializes writers and guards the open-segment accumulation state
	// below. The NLP pipeline, embedder and searcher above are stateless
	// after construction and need no lock.
	mu       sync.Mutex
	pendDocs []Document
	pendEmbs []*core.DocEmbedding // aligned with pendDocs; nil if unembeddable
	pendPos  map[int]int          // Document.ID -> position in pendDocs
	textB    *index.Builder
	nodeB    *index.Builder

	queries *queryCache
	embeds  *embedCache
	hot     *kg.HotLabels

	// metrics is the engine's observability registry; met caches the
	// pre-registered handles the pipeline updates. Both are created in New
	// and immutable afterwards, so no lock guards them.
	metrics *obs.Registry
	met     engineMetrics

	// bonTimeout is the per-request BON stage deadline in nanoseconds
	// (0 = none), read lock-free by searches and settable at any time.
	bonTimeout atomic.Int64
}

// SetBONTimeout bounds the BON (subgraph) retrieval stage of every fused
// search: past d the stage is cancelled and the request degrades to
// BOW-only ranking (SearchResponse.Degraded, reason DegradedBONTimeout)
// instead of blocking on a slow graph side. Zero removes the bound. Safe
// to call at any time, including while searches are in flight.
func (e *Engine) SetBONTimeout(d time.Duration) { e.bonTimeout.Store(int64(d)) }

// shardedSearchMinDocs is the corpus size above which postings traversal is
// sharded across GOMAXPROCS workers; below it the sequential path wins (the
// fan-out/merge overhead exceeds the traversal cost).
const shardedSearchMinDocs = 4096

// graphState bundles the knowledge graph with the components derived from
// it — the NLP pipeline (entity recognition against the graph's label
// index) and the subgraph embedder (with its pooled traversal states and
// per-group cache). It is immutable once published; SwapGraph replaces the
// whole bundle atomically, so a request that loaded one graphState keeps a
// consistent graph view for its entire lifetime.
type graphState struct {
	g        *kg.Graph
	pipe     *nlp.Pipeline
	embedder *core.Embedder
}

// New returns an Engine over the knowledge graph g. Options configure the
// engine beyond the base Config; because Config is itself an Option, both
// New(g, cfg) and New(g, cfg, WithEmbedCache(256), ...) work, and New(g)
// selects DefaultConfig.
func New(g *kg.Graph, opts ...Option) *Engine {
	o := defaultEngineOptions()
	for _, op := range opts {
		op.apply(&o)
	}
	cfg := o.cfg
	if cfg.PoolDepth <= 0 {
		cfg.PoolDepth = 100
	}
	registry := obs.NewRegistry()
	met := newEngineMetrics(registry)
	e := &Engine{
		cfg:     cfg,
		opts:    o,
		pendPos: make(map[int]int),
		textB:   index.NewBuilder(),
		nodeB:   index.NewBuilder(),
		queries: newQueryCache(o.queryCacheSize, met.cacheHits, met.cacheMisses),
		embeds:  newEmbedCache(o.embedCacheSize, met.embedCacheHits, met.embedCacheMisses),
		hot:     kg.NewHotLabels(o.hotLabelCap),
		metrics: registry,
		met:     met,
	}
	e.gs.Store(e.newGraphState(g))
	e.bonTimeout.Store(int64(o.bonTimeout))
	return e
}

// newGraphState derives the graph-side components from g under the
// engine's configuration.
func (e *Engine) newGraphState(g *kg.Graph) *graphState {
	return &graphState{
		g:    g,
		pipe: nlp.NewPipeline(g.Index()),
		embedder: core.NewEmbedder(g, core.Options{
			Model:          e.cfg.Model,
			MaxDepth:       e.cfg.MaxDepth,
			MaxExpansions:  e.cfg.MaxExpansions,
			EmbedWorkers:   e.opts.embedWorkers,
			GroupCacheSize: e.opts.groupCacheSize,
		}),
	}
}

// Graph returns the underlying knowledge graph.
func (e *Engine) Graph() *kg.Graph { return e.gs.Load().g }

// SwapGraph atomically replaces the knowledge graph with an updated
// snapshot — a re-weighted or extended export of the same entity universe.
// Every embedding cache derived from the old graph dies with it: the
// text-keyed query cache, the entity-set embedding cache and the
// embedder's per-group cache (the new embedder starts cold), so no query
// can ever be served a subgraph of a graph that is no longer published.
//
// Document embeddings indexed in sealed segments are NOT recomputed; they
// keep describing the graph they were built against. Swapping in a graph
// whose node IDs are incompatible with the indexed corpus calls for
// re-indexing (or persist.Load of a matching snapshot) instead.
func (e *Engine) SwapGraph(g *kg.Graph) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.gs.Store(e.newGraphState(g))
	e.queries.purge()
	e.embeds.purge()
}

// HotLabels returns the k most frequently embedded entity labels of the
// query stream (Space-Saving estimates; see kg.HotLabels). It identifies
// the entities whose label → distance work the embedder's group cache is
// amortizing. k <= 0 returns every tracked label.
func (e *Engine) HotLabels(k int) []kg.LabelCount { return e.hot.Top(k) }

// NumDocs returns the number of live documents: everything added (sealed
// or still pending) minus tombstoned deletes.
func (e *Engine) NumDocs() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := len(e.pendDocs)
	if s := e.set.Load(); s != nil {
		n += s.numLive()
	}
	return n
}

// NumSegments returns the number of sealed segments currently serving
// searches (0 before Build). Refresh appends one; the tiered merge policy
// and Compact shrink it.
func (e *Engine) NumSegments() int {
	if s := e.set.Load(); s != nil {
		return len(s.segs)
	}
	return 0
}

// NumDeletedDocs returns the number of tombstoned documents still held in
// segments (they stop counting once a merge rewrites their segment).
func (e *Engine) NumDeletedDocs() int {
	if s := e.set.Load(); s != nil {
		return s.deleted
	}
	return 0
}

// Add processes and indexes one document: NLP (Section IV), subgraph
// embedding (Section V) and both inverted indexes (Section VI). Documents
// whose entity groups yield no subgraph embedding are still text-indexed
// (their BON vector is empty). A document ID that was already added is
// rejected with ErrDuplicateID.
//
// Add also works after Build: late documents accumulate in an open segment
// that is sealed and attached (Lucene-style multi-segment reading) by the
// next Search or an explicit Refresh. Add is safe to call concurrently with
// searches and other Adds.
func (e *Engine) Add(doc Document) error {
	// While the ingest pipeline is armed, every write routes through it —
	// one total order with the WAL — and waits for its apply result, so
	// the documented synchronous semantics (ErrDuplicateID, ...) hold.
	if p := e.ingest.Load(); p != nil {
		return p.submit(walOpAdd, doc, true)
	}
	// Analysis touches only immutable state; run it before taking the lock
	// so concurrent Adds embed in parallel and searches are not blocked.
	emb, terms := e.analyze(doc.Text)
	e.walMu.Lock()
	defer e.walMu.Unlock()
	if err := e.logSyncLocked(walOpAdd, doc); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.addLocked(doc, emb, terms)
}

// addLocked appends one analyzed document to the open segment. A document
// ID is a duplicate when it is pending or live; a tombstoned ID may be
// re-added (that is what Update does). Callers hold e.mu.
func (e *Engine) addLocked(doc Document, emb *core.DocEmbedding, terms []string) error {
	if _, dup := e.pendPos[doc.ID]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateID, doc.ID)
	}
	s := e.set.Load()
	if s != nil {
		if _, dup := s.docPos[doc.ID]; dup {
			return fmt.Errorf("%w: %d", ErrDuplicateID, doc.ID)
		}
	}
	e.ensureSegment()
	e.pendPos[doc.ID] = len(e.pendDocs)
	e.pendDocs = append(e.pendDocs, doc)
	e.pendEmbs = append(e.pendEmbs, emb)
	e.textB.Add(terms)
	e.nodeB.AddWeighted(nodeWeights(emb))
	live := 0
	if s != nil {
		e.pending.Add(1)
		live = s.numLive()
	}
	e.met.docs.Set(int64(live + len(e.pendDocs)))
	return nil
}

// ensureSegment opens a fresh accumulation segment after the previous one
// was sealed. Callers hold e.mu.
func (e *Engine) ensureSegment() {
	if e.textB == nil {
		e.textB = index.NewBuilder()
		e.nodeB = index.NewBuilder()
		e.pendPos = make(map[int]int)
	}
}

// Refresh seals the open segment of post-Build additions so its documents
// become searchable. Search calls it automatically when pending documents
// exist; servers that want predictable query latency can call it explicitly
// after a batch of Adds instead. Safe for concurrent use; a no-op when
// nothing is pending.
func (e *Engine) Refresh() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.refreshLocked()
}

// refreshLocked seals the open segment, appends it to the published set
// and lets the tiered merge policy compact qualifying runs. Callers hold
// e.mu.
func (e *Engine) refreshLocked() {
	s := e.set.Load()
	if s == nil || len(e.pendDocs) == 0 {
		return
	}
	seg := e.sealPendingLocked()
	segs := make([]*segment, 0, len(s.segs)+1)
	segs = append(segs, s.segs...)
	segs = append(segs, seg)
	e.publishLocked(e.applyMergePolicyLocked(segs))
	e.met.refreshes.Inc()
}

// sealPendingLocked turns the open segment's accumulated state into an
// immutable segment and resets the accumulators. Callers hold e.mu and
// have checked that pending documents exist.
func (e *Engine) sealPendingLocked() *segment {
	seg := &segment{
		docs:  e.pendDocs,
		embs:  e.pendEmbs,
		sigs:  e.buildSigs(e.pendEmbs),
		times: timesOf(e.pendDocs),
		text:  e.textB.Build(),
		node:  e.nodeB.Build(),
	}
	e.pendDocs, e.pendEmbs, e.pendPos = nil, nil, nil
	e.textB, e.nodeB = nil, nil
	e.pending.Store(0)
	return seg
}

// analyzeQuery is query analysis with two-tier LRU memoization; Search,
// Explain and ExplainDOT on the same query text share one NLP + NE pass.
// Tier one keys on the folded query text (lowercased, whitespace
// collapsed — "Trump  Putin" and "trump putin" are one entry); tier two,
// consulted on a text miss, keys on the canonicalized resolved entity set,
// so differently-phrased queries naming the same entities share one G*
// computation. It records the "analyze" stage span into the request trace
// (cache hits included: a hit still shows up in the breakdown, just with a
// near-zero duration). A non-nil error is ctx's: nothing is cached then.
func (e *Engine) analyzeQuery(ctx context.Context, text string) (*core.DocEmbedding, []string, error) {
	sp := obs.FromContext(ctx).Start(obs.StageAnalyze)
	key := kg.Fold(text)
	emb, terms, hit := e.queries.get(key)
	var err error
	if !hit {
		emb, terms, err = e.analyzeQueryMiss(ctx, text)
		if err == nil {
			e.queries.put(key, emb, terms)
		}
	}
	d := sp.End(obs.Bool("cache_hit", hit), obs.Int("terms", len(terms)))
	e.met.stageObserve(obs.StageAnalyze, d)
	return emb, terms, err
}

// analyzeQueryMiss runs the NLP component, then resolves the embedding
// through the entity-set cache, embedding the groups only on a full miss.
// The embed stage span and the newslink_embed_* counters record what
// happened either way.
func (e *Engine) analyzeQueryMiss(ctx context.Context, text string) (*core.DocEmbedding, []string, error) {
	gs := e.gs.Load()
	doc := gs.pipe.Process(text)
	var terms []string
	for _, s := range doc.Sentences {
		terms = append(terms, s.Terms...)
	}
	groups := nlp.MaximalSets(doc.EntityGroups())
	sp := obs.FromContext(ctx).Start(obs.StageEmbed)
	var stats core.EmbedStats
	var emb *core.DocEmbedding
	key := entitySetKey(gs.g, groups)
	hit := false
	if key != "" {
		emb, hit = e.embeds.get(key)
	}
	if hit {
		stats.Groups = len(groups)
		stats.CacheHit = true
	} else {
		var err error
		emb, stats, err = gs.embedder.EmbedGroupsContext(ctx, groups)
		if err != nil {
			sp.End(obs.Int("groups", len(groups)))
			return nil, nil, err
		}
		if key != "" {
			e.embeds.put(key, emb)
		}
	}
	d := sp.End(
		obs.Int("groups", stats.Groups),
		obs.Int("embedded", stats.Embedded),
		obs.Int("expansions", stats.Expansions),
		obs.Bool("cache_hit", stats.CacheHit),
		obs.Int("group_cache_hits", stats.GroupCacheHits),
	)
	e.met.stageObserve(obs.StageEmbed, d)
	e.met.embedObserve(stats)
	e.touchHotLabels(emb)
	return emb, terms, nil
}

// touchHotLabels feeds the resolved labels of a query embedding into the
// hot-label tracker.
func (e *Engine) touchHotLabels(emb *core.DocEmbedding) {
	if emb == nil {
		return
	}
	for _, sg := range emb.Subgraphs {
		for _, l := range sg.Labels {
			e.hot.Touch(l)
		}
	}
}

// analyze runs the NLP and NE components on a document text (the indexing
// path: no query-side caches, so paper-faithful per-document embedding
// cost measurements stay meaningful). It reads only immutable engine state
// and is safe to call without holding e.mu.
func (e *Engine) analyze(text string) (*core.DocEmbedding, []string) {
	gs := e.gs.Load()
	doc := gs.pipe.Process(text)
	var terms []string
	for _, s := range doc.Sentences {
		terms = append(terms, s.Terms...)
	}
	groups := nlp.MaximalSets(doc.EntityGroups())
	return gs.embedder.EmbedGroups(groups), terms
}

// entitySetKey canonicalizes a document's entity groups into the tier-two
// cache key: within each group the labels are folded, deduplicated and
// kept only when they resolve to a KG node, then sorted; group keys are
// themselves sorted (duplicates kept — two equal groups contribute twice
// to node counts). Queries that differ only in phrasing, label order, case
// or unresolvable mentions therefore share one key. Returns "" when no
// group has a resolvable label, which callers treat as "don't cache".
func entitySetKey(g *kg.Graph, groups [][]string) string {
	gkeys := make([]string, 0, len(groups))
	for _, grp := range groups {
		resolved := make([]string, 0, len(grp))
	labels:
		for _, l := range grp {
			key := kg.Fold(l)
			for _, r := range resolved {
				if r == key {
					continue labels
				}
			}
			if len(g.Lookup(key)) == 0 {
				continue
			}
			resolved = append(resolved, key)
		}
		if len(resolved) == 0 {
			continue // the group cannot embed; it contributes nothing
		}
		sort.Strings(resolved)
		gkeys = append(gkeys, strings.Join(resolved, "\x1f"))
	}
	if len(gkeys) == 0 {
		return ""
	}
	sort.Strings(gkeys)
	return strings.Join(gkeys, "\x1e")
}

// nodeWeights converts a document embedding into BON term weights.
func nodeWeights(emb *core.DocEmbedding) map[string]float32 {
	if emb == nil {
		return map[string]float32{}
	}
	out := make(map[string]float32, len(emb.Counts))
	for n, c := range emb.Counts {
		out[nodeTerm(n)] = float32(c)
	}
	return out
}

// nodeTerm names a KG node in the BON index vocabulary.
func nodeTerm(n kg.NodeID) string { return strconv.FormatUint(uint64(n), 36) }

// Build finalizes the inverted indexes. It must be called once, after the
// initial Add calls and before Search.
//
// With WithWAL configured, Build also opens the write-ahead log and
// replays any records a crashed previous run left there — the initial
// corpus plus the replayed writes become the starting state — and with
// WithIngestQueue it arms the async ingest pipeline. A corrupt log fails
// Build with ErrWALCorrupt rather than silently dropping acknowledged
// writes.
func (e *Engine) Build() error {
	e.walMu.Lock()
	defer e.walMu.Unlock()
	e.mu.Lock()
	if e.set.Load() != nil {
		e.mu.Unlock()
		return ErrAlreadyBuilt
	}
	if len(e.pendDocs) == 0 {
		e.mu.Unlock()
		return ErrNoDocuments
	}
	e.publishLocked([]*segment{e.sealPendingLocked()})
	e.mu.Unlock()
	return e.startDurabilityLocked()
}

// Delete tombstones a document by ID: it disappears from Search, Explain
// and ExplainDOT immediately but — Lucene deletion semantics — keeps
// counting in DF and average document length until a merge (the tiered
// policy on Refresh, or Compact) rewrites its segment. An unknown or
// already-deleted ID returns ErrUnknownDoc; an engine without Build
// returns ErrNotBuilt. Safe to call concurrently with searches — the
// tombstone is a copy-on-write swap of the published segment set.
func (e *Engine) Delete(id int) error {
	if p := e.ingest.Load(); p != nil {
		return p.submit(walOpDelete, Document{ID: id}, true)
	}
	e.walMu.Lock()
	defer e.walMu.Unlock()
	if e.set.Load() == nil {
		return ErrNotBuilt
	}
	if err := e.logSyncLocked(walOpDelete, Document{ID: id}); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.deleteLocked(id)
}

// deleteLocked tombstones one document by public ID (the body of Delete;
// also the replay and ingest-applier delete path). Callers hold e.mu.
func (e *Engine) deleteLocked(id int) error {
	s := e.set.Load()
	if s == nil {
		return ErrNotBuilt
	}
	if _, ok := e.pendPos[id]; ok {
		// The document is still in the open segment: seal it first so the
		// tombstone lands in a sealed segment's bitmap.
		e.refreshLocked()
		s = e.set.Load()
	}
	pos, ok := s.docPos[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownDoc, id)
	}
	e.deleteAtLocked(s, pos)
	return nil
}

// deleteAtLocked tombstones the document at a global position:
// copy-on-write of the owning segment's bitmap, then a republish of the
// set. Callers hold e.mu.
func (e *Engine) deleteAtLocked(s *segmentSet, pos int) {
	si, local := s.segIndexOf(pos)
	old := s.segs[si]
	var dead *index.Bitmap
	if old.dead != nil {
		dead = old.dead.Clone()
	} else {
		dead = index.NewBitmap(len(old.docs))
	}
	dead.Set(local)
	clone := &segment{docs: old.docs, embs: old.embs, sigs: old.sigs, times: old.times, text: old.text, node: old.node, dead: dead}
	// Tombstones are not part of the artifact identity (they live in
	// meta.json), so the clone keeps the memoized snapshot artifacts.
	clone.shareArtifact(old)
	segs := make([]*segment, len(s.segs))
	copy(segs, s.segs)
	segs[si] = clone
	e.publishLocked(segs)
}

// Update replaces the document with doc.ID by tombstoning the old version
// (when one exists — Update is an upsert, so a new ID is simply added) and
// indexing the new one. The replacement is atomic from a reader's point of
// view: any search sees either the old version or the new one, never both.
// Returns ErrNotBuilt before Build; use Add for initial corpus loading.
func (e *Engine) Update(doc Document) error {
	if p := e.ingest.Load(); p != nil {
		return p.submit(walOpUpsert, doc, true)
	}
	// Analysis reads only immutable state; do it before taking the lock.
	emb, terms := e.analyze(doc.Text)
	e.walMu.Lock()
	defer e.walMu.Unlock()
	if e.set.Load() == nil {
		return ErrNotBuilt
	}
	if err := e.logSyncLocked(walOpUpsert, doc); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.upsertLocked(doc, emb, terms)
}

// upsertLocked replaces (or adds) one analyzed document: tombstone any
// previous version, then add the new one — the body of Update and the
// replay/ingest-applier upsert path. Callers hold e.mu.
func (e *Engine) upsertLocked(doc Document, emb *core.DocEmbedding, terms []string) error {
	s := e.set.Load()
	if s == nil {
		return ErrNotBuilt
	}
	if _, ok := e.pendPos[doc.ID]; ok {
		// The previous version is still pending: seal it so the tombstone
		// machinery below covers it.
		e.refreshLocked()
	}
	if s = e.set.Load(); s != nil {
		if pos, ok := s.docPos[doc.ID]; ok {
			e.deleteAtLocked(s, pos)
		}
	}
	return e.addLocked(doc, emb, terms)
}

// Compact merges every segment into a single tombstone-free segment,
// rewriting postings without deleted documents so DF and average document
// length reflect the live corpus again and block-max pruning gets full
// blocks. A no-op on an already-compacted engine; ErrNotBuilt before
// Build. Searches proceed concurrently against the pre-compaction set
// until the swap.
func (e *Engine) Compact() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.set.Load() == nil {
		return ErrNotBuilt
	}
	e.refreshLocked()
	s := e.set.Load()
	if len(s.segs) == 0 || (len(s.segs) == 1 && s.deleted == 0) {
		return nil
	}
	merged := mergeRun(s.segs)
	e.met.segmentMerges.Inc()
	e.publishLocked([]*segment{merged})
	return nil
}

// Search returns the top k documents for the query text, ranked by
// Equation 3. It is SearchContext with a background context and the
// engine's configured parameters.
func (e *Engine) Search(query string, k int) ([]Result, error) {
	return e.SearchContext(context.Background(), Query{Text: query, K: k})
}

// acquire returns the published segment set for one read operation, or
// ErrNotBuilt. When pending documents exist it refreshes first, so a
// search always sees everything added before it started. The returned set
// is immutable: the read runs lock-free against it for its full duration.
func (e *Engine) acquire() (*segmentSet, error) {
	if e.pending.Load() > 0 {
		e.Refresh()
	}
	s := e.set.Load()
	if s == nil {
		return nil, ErrNotBuilt
	}
	return s, nil
}

// lookup resolves a public document ID to its global position within the
// set the caller holds. Tombstoned documents are absent from docPos, so a
// deleted ID is unknown — Explain can never serve evidence for a document
// Search would no longer return.
func (e *Engine) lookup(s *segmentSet, docID int) (int, error) {
	pos, ok := s.docPos[docID]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownDoc, docID)
	}
	return pos, nil
}

// SearchContext executes one search request, ranked by Equation 3 with the
// request's (or the engine's) β and candidate pool. BOW and BON retrieval
// run in parallel goroutines — they touch disjoint indexes — and on corpora
// past shardedSearchMinDocs each traversal is itself sharded across
// GOMAXPROCS workers. Cancellation of ctx stops postings traversal
// cooperatively and returns ctx.Err().
//
// When ctx carries a trace (obs.WithTrace), the pipeline records one span
// per stage — analyze, bow-retrieve, bon-retrieve, fuse, topk — with stage
// attributes (candidate counts, pruning statistics, cache hit/miss, shard
// fan-out). Stage latencies additionally feed the engine's metric registry
// (Metrics) whether or not a trace is attached.
func (e *Engine) SearchContext(ctx context.Context, q Query) ([]Result, error) {
	resp, err := e.SearchContextFull(ctx, q)
	return resp.Results, err
}

// SearchContextFull is SearchContext returning the full response
// envelope, including the degradation status servers surface to clients.
// A BON-stage error or stage-deadline expiry (SetBONTimeout) in a fused
// request does not fail the request: the response carries the BOW-only
// ranking with Degraded set and the reason recorded, and the engine
// counts it in newslink_search_degraded_total{reason}. Pure-BON requests
// (β = 1) have no text ranking to fall back to and still fail hard.
func (e *Engine) SearchContextFull(ctx context.Context, q Query) (SearchResponse, error) {
	start := time.Now()
	resp, err := e.searchContext(ctx, q)
	e.met.searches.Inc()
	e.met.searchSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		e.met.searchErrors.Inc()
	}
	if resp.Degraded {
		if c := e.met.degraded[resp.DegradedReason]; c != nil {
			c.Inc()
		}
	}
	return resp, err
}

func (e *Engine) searchContext(ctx context.Context, q Query) (SearchResponse, error) {
	if err := ctx.Err(); err != nil {
		return SearchResponse{}, err
	}
	if q.K <= 0 {
		return SearchResponse{}, fmt.Errorf("%w: %d", ErrInvalidK, q.K)
	}
	beta := e.cfg.Beta
	if q.Beta != nil {
		beta = *q.Beta
	}
	if beta < 0 || beta > 1 {
		return SearchResponse{}, fmt.Errorf("%w: %g", ErrInvalidBeta, beta)
	}
	pool := q.PoolDepth
	if pool <= 0 {
		pool = e.cfg.PoolDepth
	}
	if pool < q.K {
		pool = q.K
	}
	snap, err := e.acquire()
	if err != nil {
		return SearchResponse{}, err
	}
	// A candidate pool can never usefully exceed the live corpus, so clamp
	// it to the set size; this keeps an attacker-sized PoolDepth from
	// driving pool-sized allocations regardless of the calling path.
	if n := snap.numLive(); pool > n {
		pool = n
	}
	qEmb, qTerms, err := e.analyzeQuery(ctx, q.Text)
	if err != nil {
		return SearchResponse{}, err
	}
	if err := ctx.Err(); err != nil {
		return SearchResponse{}, err
	}
	// Filter clauses compile once per request into a composed mask the
	// retrieval tier consults through the live-mask seam; an unfiltered
	// request compiles to nil and runs the untouched fast path.
	flt := e.compileFilter(e.Graph(), snap, q.After, q.Before, q.Entities, -1)
	ret, err := e.retrieve(ctx, snap, qEmb, qTerms, beta, pool, flt)
	if err != nil {
		return SearchResponse{}, err
	}
	tr := obs.FromContext(ctx)
	sp := tr.Start(obs.StageFuse)
	fuseBeta := beta
	if ret.degraded {
		// No BON ranking survived; fuse as pure text so a degraded reply
		// is score- and rank-identical to a β = 0 query and the documented
		// normalization (max score = 1) still holds.
		fuseBeta = 0
	}
	fused := search.Fuse(ret.bow, ret.bon, fuseBeta, q.K)
	d := sp.End(obs.Int("bow_candidates", len(ret.bow)), obs.Int("bon_candidates", len(ret.bon)), obs.Int("fused", len(fused)))
	e.met.stageObserve(obs.StageFuse, d)
	sp = tr.Start(obs.StageTopK)
	out := make([]Result, len(fused))
	for i, h := range fused {
		doc := snap.doc(int(h.Doc))
		out[i] = Result{
			ID:      doc.ID,
			Title:   doc.Title,
			Score:   h.Score,
			Snippet: snippet(doc.Text, qTerms),
		}
	}
	d = sp.End(obs.Int("k", len(out)))
	e.met.stageObserve(obs.StageTopK, d)
	return SearchResponse{Results: out, Degraded: ret.degraded, DegradedReason: ret.reason}, nil
}

// snippet picks the document sentence with the highest query-term overlap,
// the usual keyword-in-context preview search UIs show.
func snippet(text string, qTerms []string) string {
	if len(qTerms) == 0 {
		return ""
	}
	want := make(map[string]bool, len(qTerms))
	for _, t := range qTerms {
		want[t] = true
	}
	best, bestScore := "", 0
	for _, sent := range nlp.SplitSentences(text) {
		score := 0
		for _, t := range nlp.Terms(sent) {
			if want[t] {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = sent, score
		}
	}
	return best
}

// Explain computes the intuitive evidence for why document docID is related
// to the query: the overlap of their subgraph embeddings and up to maxPaths
// relationship paths through it.
func (e *Engine) Explain(query string, docID int, maxPaths int) (Explanation, error) {
	return e.ExplainContext(context.Background(), query, docID, maxPaths)
}

// ExplainContext is Explain with cooperative cancellation: path enumeration
// between entity pairs stops and returns ctx.Err() once ctx is done.
//
// When ctx carries a trace (obs.WithTrace), the analyze and
// path-enumeration stages record spans with pair/path counts, mirroring
// SearchContext's stage breakdown.
func (e *Engine) ExplainContext(ctx context.Context, query string, docID int, maxPaths int) (Explanation, error) {
	return e.ExplainQueryContext(ctx, Query{Text: query}, docID, maxPaths)
}

// ExplainQueryContext is ExplainContext for a full Query: the explanation
// honours the request's filters (After/Before/Entities; K/PoolDepth/Beta
// are ignored — an explanation has no ranking), so a document the
// filtered Search would never return cannot be explained either — it
// returns ErrUnknownDoc, exactly like a tombstoned document.
func (e *Engine) ExplainQueryContext(ctx context.Context, q Query, docID int, maxPaths int) (Explanation, error) {
	exp, err := e.explainContext(ctx, q, docID, maxPaths)
	e.met.explains.Inc()
	if err != nil {
		e.met.explainErrors.Inc()
	}
	return exp, err
}

func (e *Engine) explainContext(ctx context.Context, q Query, docID int, maxPaths int) (Explanation, error) {
	if err := ctx.Err(); err != nil {
		return Explanation{}, err
	}
	snap, err := e.acquire()
	if err != nil {
		return Explanation{}, err
	}
	pos, err := e.lookup(snap, docID)
	if err != nil {
		return Explanation{}, err
	}
	if q.filtered() {
		if flt := e.compileFilter(e.Graph(), snap, q.After, q.Before, q.Entities, -1); flt != nil && !flt.Keep(index.DocID(pos)) {
			return Explanation{}, fmt.Errorf("%w: %d", ErrUnknownDoc, docID)
		}
	}
	qEmb, _, err := e.analyzeQuery(ctx, q.Text)
	if err != nil {
		return Explanation{}, err
	}
	dEmb := snap.embedding(pos)
	if qEmb == nil || dEmb == nil {
		return Explanation{}, nil
	}
	g := e.Graph()
	var exp Explanation
	for _, n := range qEmb.Overlap(dEmb) {
		exp.SharedEntities = append(exp.SharedEntities, g.Label(n))
	}
	sp := obs.FromContext(ctx).Start(obs.StagePaths)
	paths, pairs, err := e.enumeratePaths(ctx, qEmb, dEmb, maxPaths)
	d := sp.End(obs.Int("pairs", pairs), obs.Int("paths", len(paths)), obs.Int("shared_entities", len(exp.SharedEntities)))
	e.met.stageObserve(obs.StagePaths, d)
	if err != nil {
		return Explanation{}, err
	}
	exp.Paths = paths
	return exp, nil
}

// enumeratePaths links every query label to every result label until
// maxPaths relationship paths are collected, shortest pairs first. It
// returns the paths and the number of label pairs actually explored.
func (e *Engine) enumeratePaths(ctx context.Context, qEmb, dEmb *core.DocEmbedding, maxPaths int) ([]Path, int, error) {
	g := e.Graph()
	qLabels := embeddingLabels(qEmb)
	dLabels := embeddingLabels(dEmb)
	var out []Path
	pairs := 0
	seen := map[string]bool{}
	seenPair := map[[2]string]bool{}
	for _, ql := range qLabels {
		if err := ctx.Err(); err != nil {
			return nil, pairs, err
		}
		for _, dl := range dLabels {
			if len(out) >= maxPaths {
				return out, pairs, nil
			}
			if ql == dl {
				continue
			}
			// A label can occur in both embeddings; visit each unordered
			// pair once so mirror-image paths are not reported twice.
			pairKey := [2]string{ql, dl}
			if dl < ql {
				pairKey = [2]string{dl, ql}
			}
			if seenPair[pairKey] {
				continue
			}
			seenPair[pairKey] = true
			pairs++
			paths, err := core.CrossPathsContext(ctx, g, qEmb, dEmb, ql, dl, 1)
			if err != nil {
				return nil, pairs, err
			}
			for _, p := range paths {
				r := p.Render(g)
				if r != "" && !seen[r] {
					seen[r] = true
					out = append(out, e.makePath(p, r))
				}
				if len(out) >= maxPaths {
					return out, pairs, nil
				}
			}
		}
	}
	return out, pairs, nil
}

// makePath converts an internal relationship path into the public form.
func (e *Engine) makePath(p core.RelPath, rendered string) Path {
	out := Path{Rendered: rendered}
	if len(p.Hops) == 0 {
		return out
	}
	g := e.Graph()
	out.Nodes = append(out.Nodes, g.Label(p.Hops[0].From))
	for _, h := range p.Hops {
		out.Nodes = append(out.Nodes, g.Label(h.To))
		out.Relations = append(out.Relations, g.RelName(h.Rel))
	}
	return out
}

// ExplainDOT renders the query's and the document's subgraph embeddings as
// a Graphviz digraph in the style of the paper's Figure 1: one color per
// embedding, overlap nodes filled orange, subgraph roots boxed. Render with
// `dot -Tsvg`. An empty string is returned when either side has no
// embedding.
func (e *Engine) ExplainDOT(query string, docID int, title string) (string, error) {
	return e.ExplainDOTContext(context.Background(), query, docID, title)
}

// ExplainDOTContext is ExplainDOT with a cancellable context.
func (e *Engine) ExplainDOTContext(ctx context.Context, query string, docID int, title string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	snap, err := e.acquire()
	if err != nil {
		return "", err
	}
	pos, err := e.lookup(snap, docID)
	if err != nil {
		return "", err
	}
	qEmb, _, err := e.analyzeQuery(ctx, query)
	if err != nil {
		return "", err
	}
	dEmb := snap.embedding(pos)
	if qEmb == nil || dEmb == nil {
		return "", nil
	}
	return core.DOT(e.Graph(), title, qEmb, dEmb), nil
}

// embeddingLabels returns the distinct entity labels a document embedding
// was built from, in deterministic order.
func embeddingLabels(emb *core.DocEmbedding) []string {
	seen := map[string]bool{}
	var out []string
	for _, sg := range emb.Subgraphs {
		for _, l := range sg.Labels {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}
