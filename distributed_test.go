package newslink

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"newslink/internal/corpus"
)

// TestAnalyzeQuery pins the analysis seam the cluster router uses: the
// text terms and node-term weights must be exactly the inputs the
// single-process searchContext feeds BOW and BON retrieval.
func TestAnalyzeQuery(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	defer e.Close()

	terms, nodes, err := e.AnalyzeQuery(context.Background(), "Taliban bombing in Lahore")
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) == 0 {
		t.Fatal("no analyzed terms")
	}
	if len(nodes) == 0 {
		t.Fatal("query about known entities embedded to no nodes")
	}
	for term, w := range nodes {
		if w <= 0 {
			t.Fatalf("node term %q has non-positive weight %v", term, w)
		}
		// Node terms are base-36 node IDs: NodeTerm must round-trip them.
		if !strings.ContainsAny(term, "0123456789abcdefghijklmnopqrstuvwxyz") {
			t.Fatalf("node term %q is not base-36", term)
		}
	}

	// A query with no graph entities yields nil node weights (BON does
	// not apply) but still analyzes text terms.
	terms, nodes, err = e.AnalyzeQuery(context.Background(), "xyzzy plugh quux")
	if err != nil {
		t.Fatal(err)
	}
	if nodes != nil {
		t.Fatalf("entity-free query produced node weights %v", nodes)
	}
	if len(terms) == 0 {
		t.Fatal("entity-free query lost its text terms")
	}
}

func TestNodeTerm(t *testing.T) {
	if got := NodeTerm(0); got != "0" {
		t.Fatalf("NodeTerm(0) = %q", got)
	}
	if got := NodeTerm(36); got != "10" {
		t.Fatalf("NodeTerm(36) = %q, want base-36 encoding", got)
	}
}

// TestSourcesAndDocAt pins the worker-side seam: index sources expose
// the published posting lists, and DocAt materializes documents by the
// same positional coordinate search hits use.
func TestSourcesAndDocAt(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	defer e.Close()

	text, node, err := e.Sources()
	if err != nil {
		t.Fatal(err)
	}
	if text.NumDocs() == 0 || node.NumDocs() == 0 {
		t.Fatalf("published sources are empty: text=%d node=%d docs", text.NumDocs(), node.NumDocs())
	}

	_, arts := corpus.Sample()
	for pos := 0; pos < len(arts); pos++ {
		doc, err := e.DocAt(pos)
		if err != nil {
			t.Fatalf("DocAt(%d): %v", pos, err)
		}
		if doc.ID != arts[pos].ID {
			t.Fatalf("DocAt(%d).ID = %d, want %d", pos, doc.ID, arts[pos].ID)
		}
	}
	for _, pos := range []int{-1, len(arts), len(arts) + 100} {
		if _, err := e.DocAt(pos); !errors.Is(err, ErrUnknownDoc) {
			t.Fatalf("DocAt(%d) = %v, want ErrUnknownDoc", pos, err)
		}
	}
}

func TestSnippetExport(t *testing.T) {
	text := "The market fell sharply. The Taliban attacked Lahore today. Weather was mild."
	got := Snippet(text, []string{"taliban", "lahore"})
	if !strings.Contains(got, "Taliban") {
		t.Fatalf("Snippet picked %q, want the sentence with the query terms", got)
	}
}

// snapshotOnDisk builds a multi-segment snapshot of the sample corpus
// and returns its directory plus the engine's full search output for a
// reference query.
func snapshotOnDisk(t *testing.T) (dir string, want []Result) {
	t.Helper()
	e := sampleEngine(t, DefaultConfig())
	want, err := e.Search("Taliban bombing in Lahore", 5)
	if err != nil {
		t.Fatal(err)
	}
	dir = t.TempDir()
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, want
}

// TestManifestRoundTrip pins the manifest surface the router partitions
// by: segments, checksums for every artifact name, and the graph
// fingerprint binding.
func TestManifestRoundTrip(t *testing.T) {
	dir, _ := snapshotOnDisk(t)
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) == 0 {
		t.Fatal("manifest has no segments")
	}
	g, _ := corpus.Sample()
	if FingerprintGraph(g) != m.Graph {
		t.Fatalf("graph fingerprint %+v does not match manifest %+v", FingerprintGraph(g), m.Graph)
	}
	for _, sm := range m.Segments {
		names := SegmentFileNames(sm.ID)
		if len(names) == 0 {
			t.Fatalf("segment %s owns no artifact files", sm.ID)
		}
		for _, name := range names {
			want, ok := m.Checksums[name]
			if !ok {
				t.Fatalf("manifest has no checksum for %s", name)
			}
			got, err := ChecksumFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s: checksum %s, want %s", name, got, want)
			}
		}
	}

	if _, err := ReadManifest(t.TempDir()); err == nil {
		t.Fatal("ReadManifest on an empty directory succeeded")
	}
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "meta.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(bad); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("corrupt manifest: %v, want ErrSnapshotCorrupt", err)
	}
}

// TestLoadSegmentsSubset pins the shard-restore path: loading all
// segments reproduces the full engine's results; loading none yields an
// empty but serviceable engine; a wrong graph or a damaged artifact is
// rejected with typed errors before any state is built.
func TestLoadSegmentsSubset(t *testing.T) {
	dir, want := snapshotOnDisk(t)
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := corpus.Sample()

	full, err := LoadSegments(dir, g, m.Graph, m.Config, m.Segments, m.Checksums)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	got, err := full.Search("Taliban bombing in Lahore", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("restored engine returned %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
		}
	}

	// Graph mismatch: a different fingerprint is rejected up front.
	if _, err := LoadSegments(dir, g, GraphFingerprint{}, m.Config, m.Segments, m.Checksums); err == nil {
		t.Fatal("LoadSegments accepted a mismatched graph fingerprint")
	}

	// Missing checksum entry.
	if _, err := LoadSegments(dir, g, m.Graph, m.Config, m.Segments, map[string]string{}); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("missing checksums: %v, want ErrSnapshotCorrupt", err)
	}

	// A damaged artifact fails verification.
	name := SegmentFileNames(m.Segments[0].ID)[0]
	path := filepath.Join(dir, name)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append([]byte("x"), orig...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSegments(dir, g, m.Graph, m.Config, m.Segments, m.Checksums); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("damaged artifact: %v, want ErrSnapshotCorrupt", err)
	}
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestOptionConstructors pins that every uniform-style option reaches
// the engine configuration it claims to set.
func TestOptionConstructors(t *testing.T) {
	g, arts := corpus.Sample()
	cfg := DefaultConfig()
	cfg.Beta = 0.25
	e := New(g,
		WithConfig(cfg),
		WithGroupCache(8),
		WithHotLabels(16),
		WithBONTimeout(123*time.Millisecond),
	)
	defer e.Close()
	if got := e.cfg.Beta; got != 0.25 {
		t.Fatalf("WithConfig did not apply: beta %v", got)
	}
	for _, a := range arts[:4] {
		if err := e.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search("Taliban", 2); err != nil {
		t.Fatal(err)
	}
}
