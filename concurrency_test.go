package newslink

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"newslink/internal/corpus"
)

// TestConcurrentAddSearchExplain interleaves writer calls (Add, AddAll,
// Refresh) with reader calls (Search, Explain, ExplainDOT, NumDocs) from
// many goroutines. Run under -race this is the regression test for the
// engine's RWMutex: at seed, Add's segment swap raced with Search.
func TestConcurrentAddSearchExplain(t *testing.T) {
	g, arts := corpus.Sample()
	e := New(g, DefaultConfig())
	for _, a := range arts[:2] {
		if err := e.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var failed atomic.Value
	fail := func(err error) { failed.CompareAndSwap(nil, err) }

	// Writer: feed the remaining sample docs one by one, then synthetic
	// filler docs, with explicit Refreshes sprinkled in.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, a := range arts[2:] {
			if err := e.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
				fail(err)
				return
			}
			if i%2 == 0 {
				e.Refresh()
			}
		}
		for i := 0; i < 20; i++ {
			// A unique alphabetic token per doc so each is individually
			// retrievable (digits are not index terms).
			err := e.Add(Document{
				ID:    1000 + i,
				Title: fmt.Sprintf("filler %d", i),
				Text:  fmt.Sprintf("Taliban activity report fillerdoc%c near Peshawar and Lahore.", 'a'+i),
			})
			if err != nil {
				fail(err)
				return
			}
		}
	}()

	queries := []string{
		"Taliban bombing in Lahore and Peshawar",
		"Sanders said voters were tired of hearing about Clinton and the FBI emails.",
		"quarterly earnings beat expectations",
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				q := queries[(r+i)%len(queries)]
				res, err := e.Search(q, 5)
				if err != nil {
					fail(err)
					return
				}
				if len(res) > 0 {
					if _, err := e.Explain(q, res[0].ID, 2); err != nil {
						fail(err)
						return
					}
					if _, err := e.ExplainDOT(q, res[0].ID, "t"); err != nil {
						fail(err)
						return
					}
				}
				e.NumDocs()
			}
		}(r)
	}
	wg.Wait()
	if err := failed.Load(); err != nil {
		t.Fatal(err)
	}
	// Every write landed and is searchable.
	if got, want := e.NumDocs(), len(arts)+20; got != want {
		t.Fatalf("NumDocs = %d, want %d", got, want)
	}
	res, err := e.Search("Taliban activity report fillerdoch", 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.ID == 1007 {
			found = true
		}
	}
	if !found {
		t.Fatalf("late-added filler doc not retrievable: %+v", res)
	}
}

// TestSearchContextCancellation: an already-cancelled context must abort
// Search, Explain and ExplainDOT promptly with ctx.Err().
func TestSearchContextCancellation(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	start := time.Now()
	if _, err := e.SearchContext(ctx, Query{Text: "Taliban bombing", K: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchContext on cancelled ctx: %v", err)
	}
	if _, err := e.ExplainContext(ctx, "Taliban bombing", 1, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExplainContext on cancelled ctx: %v", err)
	}
	if _, err := e.ExplainDOTContext(ctx, "Taliban bombing", 1, "t"); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExplainDOTContext on cancelled ctx: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled calls took %v, not prompt", elapsed)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := e.SearchContext(expired, Query{Text: "Taliban bombing", K: 3}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SearchContext on expired ctx: %v", err)
	}
}

// TestSearchRequestOverrides: per-request β and pool must behave exactly
// like an engine configured with those values.
func TestSearchRequestOverrides(t *testing.T) {
	eDefault := sampleEngine(t, DefaultConfig()) // β=0.2
	eText := sampleEngine(t, Config{Beta: 0, Model: LCAG, MaxDepth: 6, PoolDepth: 100})

	q := "Taliban bombing in Lahore and Peshawar"
	want, err := eText.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eDefault.SearchContext(context.Background(), Query{Text: q, K: 5, Beta: BetaOverride(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("β override disagrees with β-configured engine:\n%v\nvs\n%v", got, want)
	}
	// The override is per-request: the engine default is untouched.
	d1, err := eDefault.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := eDefault.SearchContext(context.Background(), Query{Text: q, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("default-parameter request disagrees with Search")
	}
	// PoolDepth override: a pool of 1 per index still fuses and returns.
	res, err := eDefault.SearchContext(context.Background(), Query{Text: q, K: 1, PoolDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("pool=1 returned %d results", len(res))
	}
}
