package newslink

import (
	"sort"
	"sync/atomic"

	"newslink/internal/core"
	"newslink/internal/index"
	"newslink/internal/textembed"
)

// The engine's searchable state is a set of immutable segments, the
// Lucene-style lifecycle (DESIGN.md §11):
//
//	Add/AddAll  → documents accumulate in the open (un-searchable) segment
//	Refresh     → the open segment is sealed, appended, and the tiered
//	              merge policy compacts runs of small segments
//	Delete      → a copy-on-write tombstone bit; the document vanishes
//	              from results immediately but keeps contributing to
//	              DF/AvgDocLen until a merge rewrites its segment
//	Compact     → everything merges into one tombstone-free segment
//
// Readers never lock: they load the published *segmentSet atomically and
// work against it for the whole request.

// segment owns one immutable slice of the corpus: its documents and
// embeddings (local positions 0..n-1), its two inverted indexes over those
// positions, and the tombstone bitmap marking deleted documents. All
// fields are immutable after construction — deletes clone the segment with
// a new bitmap — except art, a memoized snapshot-artifact identity that is
// computed on first Save and carried along (tombstones are not part of the
// artifact identity: they live in meta.json, so a delete never forces a
// segment rewrite on disk).
type segment struct {
	docs  []Document
	embs  []*core.DocEmbedding   // aligned with docs; nil if unembeddable
	sigs  []textembed.Int8Vector // int8 BON signatures, aligned with docs; nil unless WithQuantizedEmbeddings
	times []int64                // columnar Document.Time, aligned with docs
	text  index.Source           // *index.Index, or *index.DiskIndex when loaded on disk
	node  index.Source
	dead  *index.Bitmap // nil = no deletes

	art atomic.Pointer[segmentArtifact]
}

// timesOf extracts the columnar time store from a document slice: one
// int64 per document, built once at seal/merge/load so temporal filters
// read a flat column instead of chasing Document structs per candidate.
func timesOf(docs []Document) []int64 {
	times := make([]int64, len(docs))
	for i, d := range docs {
		times[i] = d.Time
	}
	return times
}

func (s *segment) numDocs() int { return len(s.docs) }
func (s *segment) numLive() int { return len(s.docs) - s.dead.Count() }

// shareArtifact copies the memoized artifact identity from an older
// incarnation of the same segment (tombstone clones share it).
func (s *segment) shareArtifact(from *segment) {
	if a := from.art.Load(); a != nil {
		s.art.Store(a)
	}
}

// segmentArtifact names a segment's on-disk artifacts: a content-derived
// id plus the CRC32-C of each file, enabling content-addressed reuse
// across incremental saves (persist.go).
type segmentArtifact struct {
	id   string
	sums map[string]string // artifact file name -> CRC32-C hex
}

// segmentSet is one published, immutable view of the searchable corpus:
// the ordered segments, the global-position bookkeeping over their
// concatenation, and the combined index sources the retrieval tier reads.
// The engine swaps the current set atomically (Engine.set), so readers get
// a consistent view with a single atomic load.
type segmentSet struct {
	segs    []*segment
	bases   []int       // bases[i] = global position of segs[i]'s first document
	numDocs int         // including tombstoned documents
	deleted int         // tombstoned documents across all segments
	docPos  map[int]int // Document.ID -> global position, live documents only
	times   []int64     // concatenated per-segment time columns, indexed by global position

	// text and node are the sources searches traverse: the single
	// segment's own index when possible, an index.Multi otherwise, and
	// wrapped in index.LiveFiltered whenever tombstones exist so deleted
	// documents are masked out of retrieval.
	text index.Source
	node index.Source
}

// newSegmentSet builds the published view over segs. Cost is O(numDocs)
// (docPos and the exact Multi statistics); it runs on the write path only
// — build, refresh, delete, merge — never per query.
func newSegmentSet(segs []*segment) *segmentSet {
	s := &segmentSet{segs: segs, docPos: make(map[int]int)}
	for _, sg := range segs {
		s.bases = append(s.bases, s.numDocs)
		for j, d := range sg.docs {
			if sg.dead.Get(j) {
				s.deleted++
			} else {
				s.docPos[d.ID] = s.numDocs + j
			}
		}
		s.numDocs += len(sg.docs)
		s.times = append(s.times, sg.times...)
	}
	var text, node index.Source
	if len(segs) == 1 {
		// Single segment: serve its index directly, so a compacted engine
		// is indistinguishable — allocation and layout included — from one
		// built in a single batch.
		text, node = segs[0].text, segs[0].node
	} else {
		texts := make([]index.Source, len(segs))
		nodes := make([]index.Source, len(segs))
		for i, sg := range segs {
			texts[i], nodes[i] = sg.text, sg.node
		}
		text, node = index.NewMulti(texts...), index.NewMulti(nodes...)
	}
	if s.deleted > 0 {
		dead := index.NewBitmap(s.numDocs)
		for i, sg := range segs {
			base := s.bases[i]
			sg.dead.ForEach(func(j int) { dead.Set(base + j) })
		}
		text = index.NewLiveFiltered(text, dead)
		node = index.NewLiveFiltered(node, dead)
	}
	s.text, s.node = text, node
	return s
}

func (s *segmentSet) numLive() int { return s.numDocs - s.deleted }

// segIndexOf locates the segment containing global position pos.
func (s *segmentSet) segIndexOf(pos int) (si, local int) {
	si = sort.Search(len(s.bases), func(i int) bool { return s.bases[i] > pos }) - 1
	return si, pos - s.bases[si]
}

// doc returns the document at a global position.
func (s *segmentSet) doc(pos int) Document {
	si, local := s.segIndexOf(pos)
	return s.segs[si].docs[local]
}

// embedding returns the subgraph embedding at a global position.
func (s *segmentSet) embedding(pos int) *core.DocEmbedding {
	si, local := s.segIndexOf(pos)
	return s.segs[si].embs[local]
}

// Tiered merge policy. Segments are tiered by live-document count:
// tier 0 holds up to mergeTier0 documents, and each higher tier is
// mergeFactor times larger. When an adjacent run of at least mergeFactor
// same-tier segments exists, the whole run merges into one tombstone-free
// segment. Adjacency is required — merging concatenates, and preserving
// document order is what keeps merged search results bitwise identical to
// the unmerged set (DESIGN.md §11). The policy bounds the segment count to
// O(mergeFactor · log_mergeFactor(corpus)), which keeps per-query fan-out
// flat and postings blocks full enough for block-max pruning to bite.
const (
	mergeFactor = 8
	mergeTier0  = 1024
)

// segTier buckets a live-document count into its merge tier.
func segTier(live int) int {
	t := 0
	for ceil := mergeTier0; live >= ceil; ceil *= mergeFactor {
		t++
	}
	return t
}

// findMergeRun locates the first (smallest-tier, then leftmost) adjacent
// run of at least mergeFactor segments of equal tier. Returns ok=false
// when no run qualifies.
func findMergeRun(segs []*segment) (lo, hi int, ok bool) {
	maxTier := 0
	tiers := make([]int, len(segs))
	for i, sg := range segs {
		tiers[i] = segTier(sg.numLive())
		if tiers[i] > maxTier {
			maxTier = tiers[i]
		}
	}
	for t := 0; t <= maxTier; t++ {
		run := 0
		for i := 0; i <= len(segs); i++ {
			if i < len(segs) && tiers[i] == t {
				run++
				continue
			}
			if run >= mergeFactor {
				return i - run, i, true
			}
			run = 0
		}
	}
	return 0, 0, false
}

// mergeRun compacts a run of segments into one segment: live documents
// and embeddings are concatenated in order and the indexes are rewritten
// tombstone-free (index.MergeSegments), so DF/AvgDocLen tighten to the
// surviving corpus and block-max summaries regain full blocks.
func mergeRun(segs []*segment) *segment {
	var docs []Document
	var embs []*core.DocEmbedding
	texts := make([]index.Source, len(segs))
	nodes := make([]index.Source, len(segs))
	deads := make([]*index.Bitmap, len(segs))
	for i, sg := range segs {
		texts[i], nodes[i], deads[i] = sg.text, sg.node, sg.dead
		for j, d := range sg.docs {
			if !sg.dead.Get(j) {
				docs = append(docs, d)
				embs = append(embs, sg.embs[j])
			}
		}
	}
	return &segment{
		docs:  docs,
		embs:  embs,
		times: timesOf(docs),
		text:  index.MergeSegments(texts, deads),
		node:  index.MergeSegments(nodes, deads),
	}
}

// applyMergePolicyLocked repeatedly merges qualifying runs until the set
// is stable. Callers hold e.mu.
func (e *Engine) applyMergePolicyLocked(segs []*segment) []*segment {
	for {
		lo, hi, ok := findMergeRun(segs)
		if !ok {
			return segs
		}
		merged := mergeRun(segs[lo:hi])
		merged.sigs = e.buildSigs(merged.embs)
		e.met.segmentMerges.Inc()
		out := make([]*segment, 0, len(segs)-(hi-lo)+1)
		out = append(out, segs[:lo]...)
		out = append(out, merged)
		out = append(out, segs[hi:]...)
		segs = out
	}
}

// publishLocked installs a new segment set, dropping segments whose
// documents are all tombstoned (nothing left to serve or to save), and
// refreshes the segment gauges. Callers hold e.mu.
func (e *Engine) publishLocked(segs []*segment) {
	kept := make([]*segment, 0, len(segs))
	for _, sg := range segs {
		if sg.numLive() > 0 {
			kept = append(kept, sg)
		}
	}
	s := newSegmentSet(kept)
	e.set.Store(s)
	e.met.segments.Set(int64(len(s.segs)))
	e.met.liveDocs.Set(int64(s.numLive()))
	e.met.deletedDocs.Set(int64(s.deleted))
	e.met.docs.Set(int64(s.numLive() + len(e.pendDocs)))
}
