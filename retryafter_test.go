package newslink

import "testing"

// TestRetryAfterSeconds pins the drain-rate-to-hint conversion: no rate
// means no estimate (callers fall back to a fixed hint), otherwise the
// hint is depth/rate rounded up and clamped to [1, 60] whole seconds.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		name  string
		depth int
		rate  float64
		want  int
	}{
		{"no rate yet", 10, 0, 0},
		{"negative rate", 10, -1, 0},
		{"empty queue floors at 1s", 0, 5, 1},
		{"sub-second drain floors at 1s", 3, 100, 1},
		{"exact division", 10, 5, 2},
		{"rounds up", 11, 5, 3},
		{"fractional rate", 9, 2.5, 4},
		{"deep queue clamps at 60s", 100000, 7, 60},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.depth, tc.rate); got != tc.want {
			t.Errorf("%s: retryAfterSeconds(%d, %g) = %d, want %d",
				tc.name, tc.depth, tc.rate, got, tc.want)
		}
	}
}

// TestIngestRetryAfter covers the engine-level wrapper: 0 without an
// armed pipeline (the server then falls back to its fixed 1s hint), 0
// before the applier has observed a drain rate, and a real estimate once
// the EWMA exists.
func TestIngestRetryAfter(t *testing.T) {
	plain := sampleEngine(t, DefaultConfig())
	defer plain.Close()
	if got := plain.IngestRetryAfter(); got != 0 {
		t.Fatalf("unarmed engine: IngestRetryAfter() = %d, want 0", got)
	}

	e := walEngine(t, t.TempDir(), WithIngestQueue(4))
	defer e.Close()
	if got := e.IngestRetryAfter(); got != 0 {
		t.Fatalf("no drain observed yet: IngestRetryAfter() = %d, want 0", got)
	}
	p := e.ingest.Load()
	p.mu.Lock()
	p.drainRate = 2.0
	p.mu.Unlock()
	if got := e.IngestRetryAfter(); got != 1 {
		t.Fatalf("empty queue with known rate: IngestRetryAfter() = %d, want 1", got)
	}
}
