package newslink

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"newslink/internal/corpus"
	"newslink/internal/faults"
)

// Crash-recovery and backpressure tests for the streaming ingest pipeline
// (WithWAL / WithIngestQueue). "Crash" means abandoning an engine without
// Close — goroutines and file handles die with the process in reality; in
// tests the abandoned applier idles harmlessly on an empty queue — and
// recovery means constructing a fresh engine over the same WAL directory
// and the same starting corpus, exactly what a restarted process does.

// streamDoc derives the i-th streamed document from the sample corpus:
// real entity-bearing text under a fresh ID, so every ingested document
// exercises NER and embedding like a live article would.
func streamDoc(arts []corpus.Article, i int) Document {
	a := arts[i%len(arts)]
	return Document{
		ID:    1000 + i,
		Title: fmt.Sprintf("stream %d: %s", i, a.Title),
		Text:  a.Text,
	}
}

// walEngine builds an engine over the sample corpus with the WAL (and
// optionally the ingest queue) armed at dir.
func walEngine(t *testing.T, dir string, extra ...Option) *Engine {
	t.Helper()
	g, arts := corpus.Sample()
	e := New(g, append([]Option{Option(DefaultConfig()), WithWAL(dir)}, extra...)...)
	for _, a := range arts {
		if err := e.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	return e
}

// liveDocSet reads back every live document (ID -> title) through the
// public state of the engine.
func liveDocSet(t *testing.T, e *Engine) map[int]string {
	t.Helper()
	e.Refresh()
	s := e.set.Load()
	if s == nil {
		t.Fatal("engine not built")
	}
	out := make(map[int]string)
	for id, pos := range s.docPos {
		out[id] = s.doc(pos).Title
	}
	return out
}

// assertConverged asserts two engines hold identical live corpora and
// rank identically on a set of probe queries after compaction (Compact
// normalizes DF/segment history, so any divergence left is real state
// divergence, not merge-timing noise).
func assertConverged(t *testing.T, got, want *Engine) {
	t.Helper()
	if err := got.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := want.Compact(); err != nil {
		t.Fatal(err)
	}
	gd, wd := liveDocSet(t, got), liveDocSet(t, want)
	if len(gd) != len(wd) {
		t.Fatalf("live docs diverged: got %d, want %d", len(gd), len(wd))
	}
	for id, title := range wd {
		if gd[id] != title {
			t.Fatalf("doc %d diverged: got %q, want %q", id, gd[id], title)
		}
	}
	for _, q := range []string{
		"Military conflicts between Pakistan and Taliban in Upper Dir",
		"Clinton and Trump in the US presidential election",
		"bombing in Lahore",
	} {
		gr, err := got.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		wr, err := want.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(gr) != len(wr) {
			t.Fatalf("query %q: %d vs %d results", q, len(gr), len(wr))
		}
		for i := range wr {
			if gr[i].ID != wr[i].ID || gr[i].Score != wr[i].Score {
				t.Fatalf("query %q rank %d diverged: got (%d, %g), want (%d, %g)",
					q, i, gr[i].ID, gr[i].Score, wr[i].ID, wr[i].Score)
			}
		}
	}
}

// walSegments lists the wal-*.log files at dir.
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestIngestPipelineServes: the full pipeline path — Ingest acks, the
// applier batches, seals and merges, searches see the documents after
// FlushIngest, and the metrics account for every write.
func TestIngestPipelineServes(t *testing.T) {
	dir := t.TempDir()
	e := walEngine(t, dir, WithIngestQueue(64), WithIngestBatch(8))
	defer e.Close()
	_, arts := corpus.Sample()
	const n = 40
	for i := 0; i < n; i++ {
		if err := e.Ingest(streamDoc(arts, i)); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	e.FlushIngest()
	if got := e.NumDocs(); got != len(arts)+n {
		t.Fatalf("NumDocs = %d, want %d", got, len(arts)+n)
	}
	res, err := e.Search("Taliban conflict in Upper Dir and Swat Valley", 10)
	if err != nil {
		t.Fatal(err)
	}
	foundStream := false
	for _, r := range res {
		if r.ID >= 1000 {
			foundStream = true
		}
	}
	if !foundStream {
		t.Fatalf("no streamed document ranked: %+v", res)
	}
	if got := e.met.ingestQueued.Value(); got != n {
		t.Fatalf("ingest_queued = %d, want %d", got, n)
	}
	if got := e.met.ingestApplied.Value(); got != n {
		t.Fatalf("ingest_applied = %d, want %d", got, n)
	}
	if got := e.met.walAppends.Value(); got != n {
		t.Fatalf("wal_appends = %d, want %d", got, n)
	}
}

// TestIngestCrashRecoveryConverges: every acknowledged Ingest survives an
// abandon-without-Close crash, and the recovered engine converges to the
// same searchable state as a clean run that never crashed.
func TestIngestCrashRecoveryConverges(t *testing.T) {
	dir := t.TempDir()
	_, arts := corpus.Sample()
	const n = 25

	crashed := walEngine(t, dir, WithIngestQueue(64), WithIngestBatch(4))
	for i := 0; i < n; i++ {
		if err := crashed.Ingest(streamDoc(arts, i)); err != nil {
			t.Fatal(err)
		}
	}
	crashed.FlushIngest()
	// Crash: no Close, no Save. The WAL is the only durable record.

	recovered := walEngine(t, dir, WithIngestQueue(64))
	defer recovered.Close()

	clean := walEngine(t, t.TempDir())
	defer clean.Close()
	for i := 0; i < n; i++ {
		if err := clean.Update(streamDoc(arts, i)); err != nil {
			t.Fatal(err)
		}
	}
	assertConverged(t, recovered, clean)
}

// TestWALSyncPathRecovery: without an ingest queue the synchronous write
// APIs log through the WAL directly; Add, Update and Delete all replay
// with their original semantics.
func TestWALSyncPathRecovery(t *testing.T) {
	dir := t.TempDir()
	_, arts := corpus.Sample()

	crashed := walEngine(t, dir)
	for i := 0; i < 6; i++ {
		if err := crashed.Add(streamDoc(arts, i)); err != nil {
			t.Fatal(err)
		}
	}
	// A duplicate add: rejected now, skipped at replay.
	if err := crashed.Add(streamDoc(arts, 2)); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate Add: %v", err)
	}
	// An update and a delete, both logged.
	upd := streamDoc(arts, 1)
	upd.Title = "updated " + upd.Title
	if err := crashed.Update(upd); err != nil {
		t.Fatal(err)
	}
	if err := crashed.Delete(1003); err != nil {
		t.Fatal(err)
	}
	// A delete of an unknown ID: rejected now, skipped at replay.
	if err := crashed.Delete(99999); !errors.Is(err, ErrUnknownDoc) {
		t.Fatalf("unknown Delete: %v", err)
	}
	// Crash.

	recovered := walEngine(t, dir)
	defer recovered.Close()
	docs := liveDocSet(t, recovered)
	if _, ok := docs[1003]; ok {
		t.Fatal("deleted doc 1003 came back after replay")
	}
	if got := docs[1001]; got != upd.Title {
		t.Fatalf("update lost: doc 1001 title %q, want %q", got, upd.Title)
	}
	clean := walEngine(t, t.TempDir())
	defer clean.Close()
	for i := 0; i < 6; i++ {
		if err := clean.Add(streamDoc(arts, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := clean.Update(upd); err != nil {
		t.Fatal(err)
	}
	if err := clean.Delete(1003); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, recovered, clean)
}

// TestWALTornWriteRecovery: a write torn mid-record by a crash (simulated
// by truncating the framed bytes of the final record on their way to
// disk) is dropped at recovery — it was the unacknowledged tail — and
// every earlier acknowledged write survives. The repaired log keeps
// accepting writes.
func TestWALTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	_, arts := corpus.Sample()

	crashed := walEngine(t, dir)
	const n = 5
	for i := 0; i < n; i++ {
		if err := crashed.Add(streamDoc(arts, i)); err != nil {
			t.Fatal(err)
		}
	}
	// The final record's bytes are cut in half in flight — the crash hits
	// mid-write, after which the process is gone: nothing else appends.
	inj := faults.New().MutateN(faults.WALAppend, 1, func(b []byte) []byte {
		return b[:len(b)/2]
	})
	faults.Arm(inj)
	_ = crashed.Add(streamDoc(arts, n)) // fate ambiguous: torn on disk
	faults.Disarm()
	if inj.Hits(faults.WALAppend) == 0 {
		t.Fatal("WALAppend fault point not reached")
	}

	recovered := walEngine(t, dir)
	defer recovered.Close()
	docs := liveDocSet(t, recovered)
	for i := 0; i < n; i++ {
		want := streamDoc(arts, i)
		if docs[want.ID] != want.Title {
			t.Fatalf("acknowledged doc %d lost after torn-write recovery", want.ID)
		}
	}
	if _, ok := docs[1000+n]; ok {
		t.Fatal("torn (unacknowledged) doc present after recovery")
	}
	// The log must keep working at the repaired boundary.
	late := streamDoc(arts, n+1)
	if err := recovered.Add(late); err != nil {
		t.Fatalf("Add after torn-tail repair: %v", err)
	}
	third := walEngine(t, dir)
	defer third.Close()
	if docs := liveDocSet(t, third); docs[late.ID] != late.Title {
		t.Fatal("post-repair write lost")
	}
}

// TestWALBitflipRefusesStart: a bit flipped under a fully-written,
// acknowledged record must surface as ErrWALCorrupt at recovery — never
// be dropped like a torn tail, which would silently lose the write.
func TestWALBitflipRefusesStart(t *testing.T) {
	dir := t.TempDir()
	_, arts := corpus.Sample()

	crashed := walEngine(t, dir)
	for i := 0; i < 4; i++ {
		if err := crashed.Add(streamDoc(arts, i)); err != nil {
			t.Fatal(err)
		}
	}
	segs := walSegments(t, dir)
	if len(segs) != 1 {
		t.Fatalf("wal segments: %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the final (fully written) record. The record's
	// bytes are all present, so replay must fail its checksum — unlike a
	// flipped length header, which is indistinguishable from a torn tail.
	data[len(data)-2] ^= 0x10
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	g, _ := corpus.Sample()
	e := New(g, DefaultConfig(), WithWAL(dir))
	for _, a := range arts {
		if err := e.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Build(); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("Build over bitflipped WAL: %v, want ErrWALCorrupt", err)
	}
}

// TestWALPartialFsyncRecovery: a failing fsync refuses the ack (the
// write's fate is ambiguous) and the log goes sticky-failed; a crash that
// additionally tears the unacknowledged tail off the file still recovers
// every acknowledged write.
func TestWALPartialFsyncRecovery(t *testing.T) {
	dir := t.TempDir()
	_, arts := corpus.Sample()

	crashed := walEngine(t, dir)
	const n = 4
	for i := 0; i < n; i++ {
		if err := crashed.Add(streamDoc(arts, i)); err != nil {
			t.Fatal(err)
		}
	}
	errDisk := errors.New("injected: disk gone")
	inj := faults.New().Fail(faults.WALSync, errDisk)
	faults.Arm(inj)
	if err := crashed.Add(streamDoc(arts, n)); !errors.Is(err, errDisk) {
		faults.Disarm()
		t.Fatalf("Add with failing fsync: %v, want injected error", err)
	}
	faults.Disarm()
	// The log is poisoned: later writes fail too, rather than pretending
	// durability recovered.
	if err := crashed.Add(streamDoc(arts, n+1)); err == nil {
		t.Fatal("write accepted on a poisoned log")
	}
	// Crash + partial write: the unsynced tail record half-reaches disk.
	segs := walSegments(t, dir)
	if len(segs) != 1 {
		t.Fatalf("wal segments: %v", segs)
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	recovered := walEngine(t, dir)
	defer recovered.Close()
	docs := liveDocSet(t, recovered)
	for i := 0; i < n; i++ {
		want := streamDoc(arts, i)
		if docs[want.ID] != want.Title {
			t.Fatalf("acknowledged doc %d lost after partial-fsync crash", want.ID)
		}
	}
	if _, ok := docs[1000+n]; ok {
		t.Fatal("unacknowledged doc survived — it was never owed durability, and its tail was torn")
	}
}

// TestIngestAckedNeverLost: the acknowledged-but-unapplied window — WAL
// durable, ack returned, crash before the applier indexed the batch — is
// exactly what the WAL exists for. The IngestApply fault drops the batch
// from memory; recovery replays it.
func TestIngestAckedNeverLost(t *testing.T) {
	dir := t.TempDir()
	_, arts := corpus.Sample()

	crashed := walEngine(t, dir, WithIngestQueue(16), WithIngestBatch(4))
	inj := faults.New().Fail(faults.IngestApply, errors.New("injected: crash before apply"))
	faults.Arm(inj)
	const n = 8
	for i := 0; i < n; i++ {
		// Ingest acks on durability; the applier then drops the batch.
		if err := crashed.Ingest(streamDoc(arts, i)); err != nil {
			faults.Disarm()
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	crashed.FlushIngest()
	faults.Disarm()
	if inj.Hits(faults.IngestApply) == 0 {
		t.Fatal("IngestApply fault point not reached")
	}
	// The crashed engine never indexed them.
	if got := crashed.NumDocs(); got != len(arts) {
		t.Fatalf("crashed engine indexed %d docs, want %d (batches dropped)", got, len(arts))
	}

	recovered := walEngine(t, dir)
	defer recovered.Close()
	docs := liveDocSet(t, recovered)
	for i := 0; i < n; i++ {
		want := streamDoc(arts, i)
		if docs[want.ID] != want.Title {
			t.Fatalf("acknowledged doc %d lost in the acked-but-unapplied window", want.ID)
		}
	}
}

// TestReplaySnapshotReplay: the full durability cycle — ingest, snapshot
// (rotating and pruning the log), more ingest, crash, Load over the
// snapshot (replaying only the post-snapshot generation), more ingest —
// converges with a clean run of the same writes.
func TestReplaySnapshotReplay(t *testing.T) {
	walDir := t.TempDir()
	snapDir := filepath.Join(t.TempDir(), "snap")
	g, arts := corpus.Sample()

	e1 := walEngine(t, walDir, WithIngestQueue(32), WithIngestBatch(4))
	for i := 0; i < 10; i++ {
		if err := e1.Ingest(streamDoc(arts, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Save(snapDir); err != nil {
		t.Fatal(err)
	}
	// Save rotated and pruned: one fresh, empty-or-small segment remains.
	if segs := walSegments(t, walDir); len(segs) != 1 {
		t.Fatalf("wal segments after Save: %v", segs)
	}
	for i := 10; i < 20; i++ {
		if err := e1.Ingest(streamDoc(arts, i)); err != nil {
			t.Fatal(err)
		}
	}
	e1.FlushIngest()
	// Crash.

	e2, err := Load(snapDir, g, WithWAL(walDir), WithIngestQueue(32))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	for i := 20; i < 25; i++ {
		if err := e2.Ingest(streamDoc(arts, i)); err != nil {
			t.Fatal(err)
		}
	}
	e2.FlushIngest()

	clean := walEngine(t, t.TempDir())
	defer clean.Close()
	for i := 0; i < 25; i++ {
		if err := clean.Update(streamDoc(arts, i)); err != nil {
			t.Fatal(err)
		}
	}
	assertConverged(t, e2, clean)
}

// TestIngestBackpressure: a full queue sheds with ErrIngestOverload
// instead of queueing unboundedly, counts the sheds, and every
// acknowledged write still lands.
func TestIngestBackpressure(t *testing.T) {
	dir := t.TempDir()
	_, arts := corpus.Sample()
	e := walEngine(t, dir, WithIngestQueue(2), WithIngestBatch(2))
	defer e.Close()

	// Stall the applier so the queue can only drain slowly.
	inj := faults.New().Delay(faults.IngestApply, 30*time.Millisecond)
	faults.Arm(inj)
	defer faults.Disarm()

	acked, shed := 0, 0
	for i := 0; i < 40; i++ {
		err := e.Ingest(streamDoc(arts, i))
		switch {
		case err == nil:
			acked++
		case errors.Is(err, ErrIngestOverload):
			shed++
		default:
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	if shed == 0 {
		t.Fatal("queue of 2 with a stalled applier shed nothing across 40 writes")
	}
	if acked == 0 {
		t.Fatal("every write shed — the queue never drained")
	}
	faults.Disarm()
	e.FlushIngest()
	docs := liveDocSet(t, e)
	got := 0
	for id := range docs {
		if id >= 1000 {
			got++
		}
	}
	if got != acked {
		t.Fatalf("%d acked writes, %d present after flush", acked, got)
	}
	if got := e.met.ingestShed.Value(); got != int64(shed) {
		t.Fatalf("ingest_shed_total = %d, want %d", got, shed)
	}
}

// TestIngestWithoutQueueIsSynchronousUpsert: Ingest without
// WithIngestQueue behaves exactly like Update.
func TestIngestWithoutQueueIsSynchronousUpsert(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	doc := Document{ID: 500, Title: "t", Text: "Taliban attacked Peshawar."}
	if err := e.Ingest(doc); err != nil {
		t.Fatal(err)
	}
	if got := e.NumDocs(); got == 0 {
		t.Fatal("ingested doc not indexed")
	}
	doc.Title = "t2"
	if err := e.Ingest(doc); err != nil {
		t.Fatal(err)
	}
	if docs := liveDocSet(t, e); docs[500] != "t2" {
		t.Fatalf("upsert semantics violated: %q", docs[500])
	}
}

// TestWriteAfterCloseFails: once Close released the WAL, writes fail with
// ErrClosed instead of silently losing durability.
func TestWriteAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	_, arts := corpus.Sample()
	e := walEngine(t, dir, WithIngestQueue(8))
	if err := e.Ingest(streamDoc(arts, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(streamDoc(arts, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after Close: %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	// The flushed write is durable: a recovery sees it.
	recovered := walEngine(t, dir)
	defer recovered.Close()
	if docs := liveDocSet(t, recovered); docs[1000] == "" {
		t.Fatal("pre-Close write lost")
	}
}

// TestLoadAppliesRuntimeOptions: Load now honors runtime options — the
// historical bug was a snapshot-restored daemon silently dropping every
// -wal/-embed-cache style flag.
func TestLoadAppliesRuntimeOptions(t *testing.T) {
	snapDir := filepath.Join(t.TempDir(), "snap")
	g, _ := corpus.Sample()
	e := sampleEngine(t, DefaultConfig())
	if err := e.Save(snapDir); err != nil {
		t.Fatal(err)
	}
	walDir := t.TempDir()
	e2, err := Load(snapDir, g, WithWAL(walDir), WithIngestQueue(4))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.ingest.Load() == nil {
		t.Fatal("Load dropped WithIngestQueue")
	}
	if e2.wal == nil {
		t.Fatal("Load dropped WithWAL")
	}
	if segs := walSegments(t, walDir); len(segs) != 1 {
		t.Fatalf("wal not opened at %s: %v", walDir, segs)
	}
}
