package newslink

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"newslink/internal/corpus"
	"newslink/internal/kg"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g, arts := corpus.Sample()
	e := sampleEngine(t, DefaultConfig())
	dir := t.TempDir()
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir, g)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != len(arts) {
		t.Fatalf("NumDocs = %d", loaded.NumDocs())
	}
	queries := []string{
		"Military conflicts between Pakistan and Taliban in Upper Dir",
		"Sanders said voters were tired of hearing about Clinton and the FBI emails.",
		"quarterly earnings beat expectations",
	}
	for _, q := range queries {
		a, err := e.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("loaded engine disagrees for %q:\n%v\nvs\n%v", q, a, b)
		}
	}
	// Explanations (which read the persisted embeddings) survive the trip.
	expA, err := e.Explain(queries[0], 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	expB, err := loaded.Explain(queries[0], 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(expA, expB) {
		t.Fatalf("explanations differ:\n%+v\nvs\n%+v", expA, expB)
	}
	// A loaded engine accepts further documents (late segment).
	if err := loaded.Add(Document{ID: 999, Title: "late", Text: "A late bulletin about Lahore."}); err != nil {
		t.Fatal(err)
	}
	late, err := loaded.Search("late bulletin", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(late) == 0 || late[0].ID != 999 {
		t.Fatalf("late doc not searchable: %+v", late)
	}
}

// TestSaveConcurrentWithAdd exercises the seal-and-capture critical section
// of Save: with concurrent Adds in flight, every snapshot written must be
// internally consistent (docs == indexed == embeddings), so each one Loads
// cleanly and every captured document is searchable. A Save that seals and
// captures in separate steps lets an interleaved Add into the captured docs
// but not the serialized indexes, and Load rejects the snapshot.
func TestSaveConcurrentWithAdd(t *testing.T) {
	g, _ := corpus.Sample()
	e := sampleEngine(t, DefaultConfig())
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for id := 1000; ; id++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.Add(Document{ID: id, Title: "late", Text: "A late bulletin about Lahore."}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		dir := t.TempDir()
		if err := e.Save(dir); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(dir, g)
		if err != nil {
			t.Fatalf("snapshot %d written during concurrent Adds: %v", i, err)
		}
		if _, err := loaded.Search("late bulletin about Lahore", 3); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-done
}

func TestSaveBeforeBuildFails(t *testing.T) {
	g, _ := corpus.Sample()
	e := New(g, DefaultConfig())
	if err := e.Save(t.TempDir()); err == nil {
		t.Fatal("Save before Build must fail")
	}
}

func TestLoadRejectsWrongGraph(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	dir := t.TempDir()
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	other := kg.Generate(kg.DefaultConfig(1)).Graph
	if _, err := Load(dir, other); err == nil {
		t.Fatal("Load with a different graph must fail")
	}
}

func TestLoadRejectsCorruptSnapshot(t *testing.T) {
	g, _ := corpus.Sample()
	e := sampleEngine(t, DefaultConfig())
	dir := t.TempDir()
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Missing file (the per-segment node index).
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.node.idx"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no seg-*.node.idx artifact in snapshot (err=%v)", err)
	}
	if err := os.Remove(matches[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, g); err == nil {
		t.Fatal("missing index must fail")
	}
	// Corrupt meta.
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, g); err == nil {
		t.Fatal("corrupt meta must fail")
	}
	// Nonexistent directory.
	if _, err := Load(filepath.Join(dir, "nope"), g); err == nil {
		t.Fatal("missing snapshot must fail")
	}
}

func TestLoadRejectsVersionSkew(t *testing.T) {
	g, _ := corpus.Sample()
	e := sampleEngine(t, DefaultConfig())
	dir := t.TempDir()
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	meta, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	bad := []byte(`{"version": 99` + string(meta[len(`{"version": 1`):]))
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, g); err == nil {
		t.Fatal("future version must fail")
	}
}

func TestLoadOnDisk(t *testing.T) {
	g, _ := corpus.Sample()
	e := sampleEngine(t, DefaultConfig())
	dir := t.TempDir()
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	disk, err := LoadOnDisk(dir, g)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	queries := []string{
		"Taliban bombing in Lahore and Peshawar",
		"Sanders said voters were tired of hearing about Clinton and the FBI emails.",
	}
	for _, q := range queries {
		a, err := e.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := disk.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("disk engine disagrees for %q:\n%v\nvs\n%v", q, a, b)
		}
	}
	// Explanations work too (embeddings are in memory either way).
	expA, err := e.Explain(queries[0], 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	expB, err := disk.Explain(queries[0], 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(expA, expB) {
		t.Fatal("explanations differ on disk engine")
	}
	// Disk engines re-save by compacting their segments.
	dir2 := t.TempDir()
	if err := disk.Save(dir2); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Load(dir2, g)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := reloaded.Search(queries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := e.Search(queries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("re-saved disk engine disagrees")
	}
	// Close is idempotent enough for the double-call pattern.
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}
	// In-memory engines Close as a no-op.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
