package newslink

import (
	"newslink/internal/index"
	"newslink/internal/kg"
)

// The engine's query-filter plane (DESIGN.md §16). A request's filter
// clauses — temporal range, entity must-match facets, and Related's
// self-exclusion — compile into one queryFilter, an index.DocFilter the
// retrieval tier consults through the same live-mask seam as tombstones
// (search.LiveSource via index.Filtered). Filters mask candidates; they
// never alter the corpus statistics the scorers read, so every block-max
// bound computed over the unfiltered postings stays a valid upper bound
// and pruning remains exact under any filter combination.

// queryFilter is one compiled, request-scoped document filter over a
// segment set's global position space. All fields are immutable after
// compileFilter, so concurrent traversal shards share it lock-free.
type queryFilter struct {
	// times is the set's concatenated time column; consulted only when a
	// temporal bound is set.
	times []int64
	// after/before are the inclusive Document.Time bounds; 0 = unbounded.
	after, before int64
	// allow, when non-nil, is the entity-facet allowlist: the conjunction
	// over requested labels of the union of node-postings per label. A
	// document must be set here to survive.
	allow *index.Bitmap
	// exclude is one global position to drop (Related's own document), or
	// -1 for none.
	exclude int
}

// Keep reports whether the document at global position d survives every
// clause. It runs inside the retrieval hot loops.
func (f *queryFilter) Keep(d index.DocID) bool {
	i := int(d)
	if i == f.exclude {
		return false
	}
	if f.after != 0 && f.times[i] < f.after {
		return false
	}
	if f.before != 0 && f.times[i] > f.before {
		return false
	}
	return f.allow == nil || f.allow.Get(i)
}

// compileFilter builds the request's queryFilter over snap, or returns nil
// when the request carries no filter clause (the unfiltered fast path:
// retrieval then runs on the raw sources, paying nothing). exclude is a
// global position to hide, or -1. The entity facet resolves each label
// against the graph and materializes the allowlist bitmap by walking node
// postings — O(total matching postings), paid once per request, never per
// candidate.
func (e *Engine) compileFilter(g *kg.Graph, snap *segmentSet, after, before int64, entities []string, exclude int) *queryFilter {
	if after == 0 && before == 0 && len(entities) == 0 && exclude < 0 {
		return nil
	}
	f := &queryFilter{times: snap.times, after: after, before: before, exclude: exclude}
	if len(entities) > 0 {
		f.allow = allowBitmap(snap.node, snap.numDocs, entityTerms(g, entities))
	}
	return f
}

// entityTerms resolves entity labels to node-term sets: labels[i] becomes
// the node-index terms of every KG node the folded label maps to. An
// unresolvable label yields an empty set — it can match no document. The
// cluster router ships these sets to workers (EntityTerms), so both tiers
// share one resolution.
func entityTerms(g *kg.Graph, labels []string) [][]string {
	sets := make([][]string, len(labels))
	for i, l := range labels {
		nodes := g.Lookup(kg.Fold(l))
		terms := make([]string, len(nodes))
		for j, n := range nodes {
			terms[j] = nodeTerm(n)
		}
		sets[i] = terms
	}
	return sets
}

// allowBitmap materializes the entity-facet allowlist over a node index:
// within one term set (one label) documents union — any of the label's
// nodes in the embedding matches — and across sets they intersect (every
// label must match). Postings include tombstoned documents; liveness is a
// separate clause of the composed mask, so including them here is
// harmless. An empty set intersects everything away, so the bitmap (and
// therefore the filter) matches nothing — the right answer for a label
// the graph cannot resolve.
func allowBitmap(node index.Source, numDocs int, termSets [][]string) *index.Bitmap {
	var allow *index.Bitmap
	for _, terms := range termSets {
		cur := index.NewBitmap(numDocs)
		for _, t := range terms {
			for _, p := range node.Postings(t) {
				cur.Set(int(p.Doc))
			}
		}
		if allow == nil {
			allow = cur
		} else {
			allow = intersectBitmaps(allow, cur, numDocs)
		}
	}
	return allow
}

// intersectBitmaps returns a ∧ b as a fresh bitmap of numDocs bits.
func intersectBitmaps(a, b *index.Bitmap, numDocs int) *index.Bitmap {
	out := index.NewBitmap(numDocs)
	a.ForEach(func(i int) {
		if b.Get(i) {
			out.Set(i)
		}
	})
	return out
}
