#!/bin/sh
# Runs the key engine benchmarks and emits a machine-readable JSON file:
# one record per benchmark variant with ns/op, B/op, allocs/op and any
# custom metrics the benchmark reports (postings_scored/op,
# blocks_skipped/op, p99-ns, ingested-docs/sec). The BenchmarkQueryEmbed
# band covers the KG side: Table-8-style multi-entity query embedding at
# 100k and 1M synthetic nodes; BenchmarkSustainedIngestServe covers the
# write side: search p99 while the streaming pipeline absorbs ~1k docs/sec;
# BenchmarkClusterScatterGather covers the serving tier: one warm search
# through the cluster router and three local shard workers (scatter, merge,
# document gather); BenchmarkFilteredSearch and BenchmarkRelated cover the
# DocFilter plane: fused search under time-window and entity-facet filters
# (with pruning counters) and related-news search on both BON legs.
# CI uploads the file as an artifact so the performance trajectory has a
# reproducible, CI-generated source; run locally as
#
#     ./ci/bench.sh [benchtime] [outfile]
#
# with a real benchtime (e.g. 2s) for publishable numbers — CI uses a short
# smoke time so the job stays fast. The default outfile is the unversioned
# BENCH.json; callers that archive a PR's numbers (ci.yml, reproduce.sh)
# pass the versioned BENCH_prN.json name explicitly.
set -eu
cd "$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"

BENCHTIME="${1:-1s}"
OUT="${2:-BENCH.json}"
BENCHES='BenchmarkTopKStrategies|BenchmarkParallelFusedSearch|BenchmarkSnapshotServing|BenchmarkSegmentChurn|BenchmarkQueryEmbed|BenchmarkSustainedIngestServe|BenchmarkClusterScatterGather|BenchmarkFilteredSearch|BenchmarkRelated'
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$BENCHES" -benchtime "$BENCHTIME" -benchmem . ./internal/cluster | tee "$RAW"

# Parse `go test -bench` lines into a JSON array. A line looks like:
#   BenchmarkName/sub-8  100  12345 ns/op  67 B/op  8 allocs/op  9.0 extra/op
awk '
BEGIN { n = 0; print "[" }
/^Benchmark/ {
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s", $1, $2
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/"/, "", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { if (n) printf "\n"; print "]" }
' "$RAW" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmark records)"
