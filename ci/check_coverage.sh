#!/bin/sh
# Coverage gate: runs the test suite with a coverage profile, prints the
# per-package coverage, and fails when total statement coverage drops below
# the committed baseline (ci/coverage_baseline.txt).
#
# The baseline is a floor, not a target: raise it when coverage improves
# durably, never lower it to make a PR pass. Strictly POSIX sh; CI invokes
# this script directly so the gate is reproducible locally:
#
#	./ci/check_coverage.sh
set -eu

dir=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
cd -- "$dir"

profile="${COVERPROFILE:-/tmp/newslink-coverage.out}"

echo '>> per-package coverage'
go test -count=1 -coverprofile "$profile" ./...

total=$(go tool cover -func="$profile" | awk '$1 == "total:" { gsub(/%/, "", $3); print $3 }')
baseline=$(tr -d '[:space:]' < ci/coverage_baseline.txt)

echo ">> total statement coverage: ${total}% (baseline: ${baseline}%)"
if awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t + 0 >= b + 0) }'; then
    echo '>> coverage gate passed'
else
    echo "coverage gate FAILED: total ${total}% is below the committed baseline ${baseline}%" >&2
    echo "(if coverage legitimately moved, adjust ci/coverage_baseline.txt in the same PR and justify it)" >&2
    exit 1
fi
