#!/bin/sh
# Benchmark-regression gate: runs ci/bench.sh and compares every variant's
# ns/op, B/op and allocs/op against the committed baseline in
# ci/bench_baseline.json, failing when either regresses past the
# tolerance. The tolerance defaults to 30% (TOLERANCE_PCT overrides it) —
# wide enough to absorb shared-runner noise on wall-clock numbers, tight
# enough to catch a real regression; B/op and allocs/op are
# near-deterministic, so a tolerance breach there is almost always a
# genuine change.
#
#	./ci/check_bench.sh [benchtime]
#
# A baseline variant missing from the fresh run FAILS the gate: a renamed
# or deleted benchmark would otherwise pass vacuously forever, silently
# retiring its regression coverage. Variants present only in the current
# run are reported but do not fail (new benchmarks land before their
# baseline does; the baseline is updated in the same PR or the next). CI
# runs this as a visible-but-not-required job: wall-clock comparisons
# across heterogeneous runners advise, the committed BENCH_prN.json
# artifacts decide.
#
# When a regression is real and intended (or an optimisation makes the
# baseline stale), regenerate it and commit the change in the same PR:
#
#	./ci/bench.sh 1s ci/bench_baseline.json
set -eu
cd "$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"

BENCHTIME="${1:-1s}"
TOLERANCE_PCT="${TOLERANCE_PCT:-30}"
BASELINE=ci/bench_baseline.json

if [ ! -f "$BASELINE" ]; then
    echo "no baseline at $BASELINE; generate one with: ./ci/bench.sh 1s $BASELINE" >&2
    exit 1
fi

CURRENT="$(mktemp)"
trap 'rm -f "$CURRENT"' EXIT

./ci/bench.sh "$BENCHTIME" "$CURRENT"

# Both files are emitted by ci/bench.sh's own awk: a JSON array with one
# record per line, so line-oriented extraction of (name, ns/op, B/op,
# allocs/op) is reliable without a JSON tool.
extract() {
    awk '
    /"name"/ {
        name = ""; ns = ""; allocs = ""; bytes = ""
        if (match($0, /"name": "[^"]*"/)) {
            name = substr($0, RSTART + 9, RLENGTH - 10)
        }
        if (match($0, /"ns\/op": [0-9.e+]*/)) {
            ns = substr($0, RSTART + 9, RLENGTH - 9)
        }
        if (match($0, /"B\/op": [0-9.e+]*/)) {
            bytes = substr($0, RSTART + 8, RLENGTH - 8)
        }
        if (match($0, /"allocs\/op": [0-9.e+]*/)) {
            allocs = substr($0, RSTART + 13, RLENGTH - 13)
        }
        if (name != "") print name, ns, allocs, bytes
    }' "$1"
}

BASE_TSV="$(mktemp)"
CUR_TSV="$(mktemp)"
trap 'rm -f "$CURRENT" "$BASE_TSV" "$CUR_TSV"' EXIT
extract "$BASELINE" > "$BASE_TSV"
extract "$CURRENT" > "$CUR_TSV"

echo ">> comparing against $BASELINE (tolerance ${TOLERANCE_PCT}%)"
fail=0
while read -r name base_ns base_allocs base_bytes; do
    cur_line=$(grep -F -- "$name " "$CUR_TSV" | head -n1 || true)
    if [ -z "$cur_line" ]; then
        echo "   [FAIL] $name: in baseline but missing from current run (renamed or deleted?)"
        echo "          update $BASELINE in the same PR if the change is intended"
        fail=1
        continue
    fi
    cur_ns=$(printf '%s' "$cur_line" | awk '{print $2}')
    cur_allocs=$(printf '%s' "$cur_line" | awk '{print $3}')
    cur_bytes=$(printf '%s' "$cur_line" | awk '{print $4}')
    for metric in ns allocs bytes; do
        case "$metric" in
        ns)     b="$base_ns";     c="$cur_ns";     unit="ns/op" ;;
        allocs) b="$base_allocs"; c="$cur_allocs"; unit="allocs/op" ;;
        bytes)  b="$base_bytes";  c="$cur_bytes";  unit="B/op" ;;
        esac
        [ -n "$b" ] && [ -n "$c" ] || continue
        if awk -v b="$b" -v c="$c" -v tol="$TOLERANCE_PCT" \
            'BEGIN { exit !(c > b * (1 + tol / 100)) }'; then
            echo "   [FAIL] $name: $unit $c vs baseline $b (>${TOLERANCE_PCT}% regression)"
            fail=1
        else
            echo "   [ ok ] $name: $unit $c vs baseline $b"
        fi
    done
done < "$BASE_TSV"

# Surface benchmarks that exist only in the current run, for visibility.
while read -r name _ _; do
    if ! grep -qF -- "$name " "$BASE_TSV"; then
        echo "   [new ] $name: no baseline yet"
    fi
done < "$CUR_TSV"

if [ "$fail" -ne 0 ]; then
    echo "benchmark gate FAILED: regression past ${TOLERANCE_PCT}% tolerance" >&2
    echo "(if the regression is intended, regenerate: ./ci/bench.sh 1s $BASELINE)" >&2
    exit 1
fi
echo '>> benchmark gate passed'
