package newslink

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"newslink/internal/corpus"
	"newslink/internal/faults"
)

// copyDir clones a flat snapshot directory into dst.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// segArtifact locates the (single) per-segment artifact file with the
// given suffix inside a snapshot directory.
func segArtifact(t *testing.T, dir, suffix string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*."+suffix))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no seg-*.%s artifact in %s (err=%v)", suffix, dir, err)
	}
	return matches[0]
}

// TestLoadCorruptionTable drives Load and LoadOnDisk over every corruption
// class the snapshot format defends against: truncation, a single bit
// flip, and outright removal of each binary artifact, plus version skew
// and a torn meta.json. Each case must return the matching typed error
// and never a (half-built) engine.
func TestLoadCorruptionTable(t *testing.T) {
	g, _ := corpus.Sample()
	e := sampleEngine(t, DefaultConfig())
	pristine := filepath.Join(t.TempDir(), "snap")
	if err := e.Save(pristine); err != nil {
		t.Fatal(err)
	}

	artifacts := []string{"text.idx", "node.idx", "emb.bin"}
	type tc struct {
		name    string
		mutate  func(t *testing.T, dir string)
		wantErr error
	}
	var cases []tc
	for _, a := range artifacts {
		cases = append(cases,
			tc{"truncate/" + a, func(t *testing.T, dir string) {
				path := segArtifact(t, dir, a)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			}, ErrSnapshotCorrupt},
			tc{"bitflip/" + a, func(t *testing.T, dir string) {
				path := segArtifact(t, dir, a)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)/2] ^= 0x01
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}, ErrSnapshotCorrupt},
			tc{"missing/" + a, func(t *testing.T, dir string) {
				if err := os.Remove(segArtifact(t, dir, a)); err != nil {
					t.Fatal(err)
				}
			}, ErrSnapshotCorrupt},
		)
	}
	cases = append(cases,
		tc{"version-skew", func(t *testing.T, dir string) {
			path := filepath.Join(dir, "meta.json")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var m map[string]json.RawMessage
			if err := json.Unmarshal(data, &m); err != nil {
				t.Fatal(err)
			}
			m["version"] = json.RawMessage("99")
			out, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, out, 0o644); err != nil {
				t.Fatal(err)
			}
		}, ErrSnapshotVersion},
		// A snapshot from before the block-compressed index format (v3):
		// the version gate must reject it before any index bytes are read,
		// so the pre-PR on-disk layout never reaches the parser.
		tc{"pre-block-format-version", func(t *testing.T, dir string) {
			path := filepath.Join(dir, "meta.json")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var m map[string]json.RawMessage
			if err := json.Unmarshal(data, &m); err != nil {
				t.Fatal(err)
			}
			m["version"] = json.RawMessage("2")
			out, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, out, 0o644); err != nil {
				t.Fatal(err)
			}
		}, ErrSnapshotVersion},
		tc{"torn-meta", func(t *testing.T, dir string) {
			if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte(`{"version": 2, "conf`), 0o644); err != nil {
				t.Fatal(err)
			}
		}, ErrSnapshotCorrupt},
		tc{"missing-checksum", func(t *testing.T, dir string) {
			path := filepath.Join(dir, "meta.json")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var m map[string]json.RawMessage
			if err := json.Unmarshal(data, &m); err != nil {
				t.Fatal(err)
			}
			m["checksums"] = json.RawMessage("{}")
			out, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, out, 0o644); err != nil {
				t.Fatal(err)
			}
		}, ErrSnapshotCorrupt},
	)

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "snap")
			copyDir(t, pristine, dir)
			c.mutate(t, dir)
			for loader, loadFn := range map[string]func(string) (*Engine, error){
				"Load":       func(d string) (*Engine, error) { return Load(d, g) },
				"LoadOnDisk": func(d string) (*Engine, error) { return LoadOnDisk(d, g) },
			} {
				got, err := loadFn(dir)
				if got != nil {
					got.Close()
					t.Fatalf("%s returned an engine from a corrupt snapshot", loader)
				}
				if !errors.Is(err, c.wantErr) {
					t.Fatalf("%s error = %v, want %v", loader, err, c.wantErr)
				}
			}
		})
	}
}

// parentEntries lists the names in the snapshot's parent directory, the
// debris check of the Save failure tests.
func parentEntries(t *testing.T, parent string) []string {
	t.Helper()
	ents, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names
}

// TestSaveRenameFaultKeepsPreviousSnapshot: a failure at the install
// rename must leave the previously saved snapshot fully loadable and no
// staging or parking debris in the parent directory.
func TestSaveRenameFaultKeepsPreviousSnapshot(t *testing.T) {
	g, _ := corpus.Sample()
	e := sampleEngine(t, DefaultConfig())
	parent := t.TempDir()
	dir := filepath.Join(parent, "snap")
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	before, err := Load(dir, g)
	if err != nil {
		t.Fatal(err)
	}
	wantDocs := before.NumDocs()
	wantRes, err := before.Search("Taliban bombing in Lahore", 3)
	if err != nil {
		t.Fatal(err)
	}

	// Change the engine so a successful save would alter the snapshot,
	// then fail the install.
	if err := e.Add(Document{ID: 4242, Title: "late", Text: "A late bulletin about Lahore."}); err != nil {
		t.Fatal(err)
	}
	errInjected := errors.New("injected rename failure")
	faults.Arm(faults.New().Fail(faults.SaveRename, errInjected))
	defer faults.Disarm()
	if err := e.Save(dir); !errors.Is(err, errInjected) {
		t.Fatalf("Save under rename fault = %v, want the injected error", err)
	}
	faults.Disarm()

	if got := parentEntries(t, parent); len(got) != 1 || got[0] != "snap" {
		t.Fatalf("staging debris left behind: %v", got)
	}
	after, err := Load(dir, g)
	if err != nil {
		t.Fatalf("previous snapshot no longer loads: %v", err)
	}
	if after.NumDocs() != wantDocs {
		t.Fatalf("previous snapshot changed: %d docs, want %d", after.NumDocs(), wantDocs)
	}
	gotRes, err := after.Search("Taliban bombing in Lahore", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatalf("previous snapshot ranking changed:\n%v\nvs\n%v", gotRes, wantRes)
	}
}

// TestSaveWriteFaultCleansUp: a failure while writing any artifact must
// abort the save, leave no staging directory, and keep a pre-existing
// snapshot untouched.
func TestSaveWriteFaultCleansUp(t *testing.T) {
	g, _ := corpus.Sample()
	e := sampleEngine(t, DefaultConfig())
	errInjected := errors.New("injected write failure")

	// Fresh target: nothing must appear at all.
	parent := t.TempDir()
	dir := filepath.Join(parent, "snap")
	faults.Arm(faults.New().FailN(faults.SaveWrite, 1, errInjected))
	if err := e.Save(dir); !errors.Is(err, errInjected) {
		t.Fatalf("Save under write fault = %v", err)
	}
	faults.Disarm()
	if got := parentEntries(t, parent); len(got) != 0 {
		t.Fatalf("failed save left debris: %v", got)
	}

	// Existing target: a mid-save write failure must leave the previous
	// snapshot loadable. (A failure after all writes — at install time —
	// is covered by TestSaveRenameFaultKeepsPreviousSnapshot.)
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	faults.Arm(faults.New().FailN(faults.SaveWrite, 1, errInjected))
	err := e.Save(dir)
	faults.Disarm()
	if !errors.Is(err, errInjected) {
		t.Fatalf("Save under write fault = %v", err)
	}
	if got := parentEntries(t, parent); len(got) != 1 || got[0] != "snap" {
		t.Fatalf("failed save left debris: %v", got)
	}
	if _, err := Load(dir, g); err != nil {
		t.Fatalf("previous snapshot no longer loads: %v", err)
	}
}
