package newslink

import "errors"

// Sentinel errors returned by the Engine API. Callers should match them
// with errors.Is; the returned errors may wrap these with per-call detail
// (the offending k, document ID, ...).
var (
	// ErrNotBuilt is returned by read operations (Search, Explain,
	// ExplainDOT, Save) invoked before Build.
	ErrNotBuilt = errors.New("newslink: engine not built")
	// ErrAlreadyBuilt is returned by a second Build call.
	ErrAlreadyBuilt = errors.New("newslink: engine already built")
	// ErrNoDocuments is returned by Build when nothing was added.
	ErrNoDocuments = errors.New("newslink: no documents added")
	// ErrUnknownDoc is returned when a document ID was never added.
	ErrUnknownDoc = errors.New("newslink: unknown document")
	// ErrInvalidK is returned for non-positive result counts.
	ErrInvalidK = errors.New("newslink: invalid k")
	// ErrInvalidBeta is returned for per-request β outside [0, 1].
	ErrInvalidBeta = errors.New("newslink: invalid beta")
	// ErrDuplicateID is returned by Add for a document ID already indexed.
	ErrDuplicateID = errors.New("newslink: duplicate document id")
	// ErrSnapshotCorrupt is returned by Load/LoadOnDisk when a snapshot
	// fails integrity verification: an unparsable meta.json, a missing or
	// truncated artifact, a checksum mismatch, or internally inconsistent
	// document counts. A corrupt snapshot never yields a partial engine.
	ErrSnapshotCorrupt = errors.New("newslink: snapshot corrupt")
	// ErrSnapshotVersion is returned by Load/LoadOnDisk when the snapshot
	// was written by an incompatible format version.
	ErrSnapshotVersion = errors.New("newslink: snapshot version mismatch")
	// ErrIngestOverload is returned by writes when the bounded ingest
	// queue (WithIngestQueue) is full. The write was not logged, not
	// queued and will not be applied; callers should retry after a
	// backoff — the HTTP layer maps it to 429 + Retry-After.
	ErrIngestOverload = errors.New("newslink: ingest queue full")
	// ErrWALCorrupt is returned by Build/Load when the write-ahead log
	// fails validation: a fully-written record with a checksum mismatch,
	// or impossible framing that a torn tail cannot explain. The log may
	// hold acknowledged writes, so the engine refuses to start rather
	// than silently dropping them; the operator decides whether to
	// restore a snapshot or discard the log.
	ErrWALCorrupt = errors.New("newslink: write-ahead log corrupt")
	// ErrClosed is returned by writes after Close released the ingest
	// pipeline and the write-ahead log.
	ErrClosed = errors.New("newslink: engine closed")
)
