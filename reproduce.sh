#!/usr/bin/env sh
# Reproduce the full NewsLink evaluation: tests, benchmarks, and every
# table/figure of the paper's Section VII. Outputs land in the repo root
# (test_output.txt, bench_output.txt, experiments_output.txt).
#
#   ./reproduce.sh          # default scale (full): several minutes
#   ./reproduce.sh small    # quick pass: ~1 minute
set -e
SCALE="${1:-full}"

echo "== go build/vet =="
go build ./...
go vet ./...

echo "== tests =="
go test ./... 2>&1 | tee test_output.txt

echo "== benchmarks =="
go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

echo "== benchmark artifact =="
# Versioned name passed explicitly: ci/bench.sh itself defaults to the
# unversioned BENCH.json.
./ci/bench.sh 2s BENCH_pr10.json

echo "== experiments (scale=$SCALE) =="
go run ./cmd/experiments -all -scale "$SCALE" 2>&1 | tee experiments_output.txt

echo "done: see test_output.txt, bench_output.txt, experiments_output.txt"
