package newslink

import (
	"context"
	"strings"
	"sync"
	"testing"

	"newslink/internal/obs"
)

// TestSearchAndExplainRecordAllStageSpans drives one traced search plus one
// traced explain and asserts the full six-stage pipeline breakdown:
// analyze, bow-retrieve, bon-retrieve, fuse and topk from the search,
// path-enumeration from the explain.
func TestSearchAndExplainRecordAllStageSpans(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	q := "Military conflicts between Pakistan and Taliban"

	ctx, tr := obs.WithTrace(context.Background())
	results, err := e.SearchContext(ctx, Query{Text: q, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	if _, err := e.ExplainContext(ctx, q, results[0].ID, 3); err != nil {
		t.Fatal(err)
	}

	got := map[string]obs.Span{}
	for _, sp := range tr.Spans() {
		if _, dup := got[sp.Stage]; !dup {
			got[sp.Stage] = sp
		}
	}
	for _, stage := range []string{
		obs.StageAnalyze, obs.StageBOW, obs.StageBON,
		obs.StageFuse, obs.StageTopK, obs.StagePaths,
	} {
		if _, ok := got[stage]; !ok {
			t.Errorf("stage %q missing from trace (got %d spans)", stage, len(tr.Spans()))
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// The first analyze span must be a cache miss, and retrieval spans must
	// carry their candidate/fan-out attributes.
	if v, ok := got[obs.StageAnalyze].Attr("cache_hit"); !ok || v != 0 {
		t.Fatalf("first analyze span cache_hit = %d, %v (want recorded miss)", v, ok)
	}
	for _, stage := range []string{obs.StageBOW, obs.StageBON} {
		sp := got[stage]
		if v, ok := sp.Attr("candidates"); !ok || v <= 0 {
			t.Fatalf("%s candidates attr = %d, %v", stage, v, ok)
		}
		if v, ok := sp.Attr("shards"); !ok || v < 1 {
			t.Fatalf("%s shards attr = %d, %v", stage, v, ok)
		}
	}
	if v, ok := got[obs.StagePaths].Attr("pairs"); !ok || v <= 0 {
		t.Fatalf("path-enumeration pairs attr = %d, %v", v, ok)
	}

	// Explain reused the query-analysis cache: its analyze span is a hit.
	var sawHit bool
	for _, sp := range tr.Spans() {
		if sp.Stage == obs.StageAnalyze {
			if v, _ := sp.Attr("cache_hit"); v == 1 {
				sawHit = true
			}
		}
	}
	if !sawHit {
		t.Fatal("explain's analyze span did not hit the query cache")
	}
}

// TestUntracedSearchStillFeedsMetrics checks that plain SearchContext (no
// trace attached) records stage latencies and counters into the registry.
func TestUntracedSearchStillFeedsMetrics(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	if _, err := e.Search("Pakistan Taliban conflict", 3); err != nil {
		t.Fatal(err)
	}
	met := e.met
	if got := met.searches.Value(); got != 1 {
		t.Fatalf("searches_total = %d, want 1", got)
	}
	if got := met.searchSeconds.Count(); got != 1 {
		t.Fatalf("search_seconds count = %d, want 1", got)
	}
	for _, stage := range []string{obs.StageAnalyze, obs.StageBOW, obs.StageBON, obs.StageFuse, obs.StageTopK} {
		if met.stages[stage].Count() == 0 {
			t.Fatalf("stage %q histogram empty after untraced search", stage)
		}
	}
	if met.docs.Value() != int64(e.NumDocs()) {
		t.Fatalf("docs gauge = %d, want %d", met.docs.Value(), e.NumDocs())
	}
	// The registry renders both formats without error.
	var b strings.Builder
	if err := e.Metrics().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "newslink_searches_total") {
		t.Fatal("JSON exposition missing newslink_searches_total")
	}
	b.Reset()
	if err := e.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `newslink_query_stage_seconds_bucket{stage="analyze"`) {
		t.Fatal("Prometheus exposition missing stage histogram")
	}
}

// TestConcurrentSearchesHammerMetrics runs traced and untraced searches
// plus explains from many goroutines; under -race this is the regression
// test that the metrics/trace instrumentation introduces no data races in
// the read path, and the counter totals double-check the atomics.
func TestConcurrentSearchesHammerMetrics(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	queries := []string{
		"Military conflicts between Pakistan and Taliban",
		"US presidential election campaign",
		"earthquake relief efforts",
	}
	const workers, per = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ctx := context.Background()
				var tr *obs.Trace
				if i%2 == 0 {
					ctx, tr = obs.WithTrace(ctx)
				}
				res, err := e.SearchContext(ctx, Query{Text: queries[(w+i)%len(queries)], K: 3})
				if err != nil {
					t.Error(err)
					return
				}
				if tr != nil && len(tr.Spans()) == 0 {
					t.Error("traced search recorded no spans")
					return
				}
				if len(res) > 0 {
					if _, err := e.ExplainContext(ctx, queries[(w+i)%len(queries)], res[0].ID, 2); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := e.met.searches.Value(); got != workers*per {
		t.Fatalf("searches_total = %d, want %d", got, workers*per)
	}
	if hits, misses := e.met.cacheHits.Value(), e.met.cacheMisses.Value(); hits+misses == 0 {
		t.Fatalf("query cache counters empty: hits=%d misses=%d", hits, misses)
	}
}
