package newslink

import (
	"fmt"
	"testing"
)

// Regression: put on a cache constructed with max <= 0 used to call
// list.Remove(nil) — the eviction branch fired with an empty order list.
// A non-positive capacity must mean "cache disabled", not panic.
func TestQueryCacheZeroCapacity(t *testing.T) {
	for _, max := range []int{0, -1} {
		c := newQueryCache(max, nil, nil)
		c.put("q", nil, []string{"a"})
		c.put("q2", nil, []string{"b"})
		if n := c.len(); n != 0 {
			t.Fatalf("max=%d: cached %d entries, want 0", max, n)
		}
		if _, _, ok := c.get("q"); ok {
			t.Fatalf("max=%d: get returned an entry from a disabled cache", max)
		}
	}
}

// TestQueryCacheEviction pins the LRU behavior around the capacity
// boundary, including the smallest legal capacity.
func TestQueryCacheEviction(t *testing.T) {
	c := newQueryCache(1, nil, nil)
	c.put("a", nil, nil)
	c.put("b", nil, nil) // evicts a
	if _, _, ok := c.get("a"); ok {
		t.Fatal("entry a should have been evicted")
	}
	if _, _, ok := c.get("b"); !ok {
		t.Fatal("entry b should be cached")
	}
	if n := c.len(); n != 1 {
		t.Fatalf("len = %d, want 1", n)
	}

	c = newQueryCache(3, nil, nil)
	for i := 0; i < 5; i++ {
		c.put(fmt.Sprint(i), nil, nil)
	}
	if n := c.len(); n != 3 {
		t.Fatalf("len = %d, want 3", n)
	}
	for i, want := range []bool{false, false, true, true, true} {
		if _, _, ok := c.get(fmt.Sprint(i)); ok != want {
			t.Fatalf("entry %d cached = %v, want %v", i, ok, want)
		}
	}
}
