package newslink

import (
	"context"
	"fmt"

	"newslink/internal/index"
	"newslink/internal/obs"
	"newslink/internal/search"
)

// Related-news search: rank the corpus against one indexed document,
// re-using its stored subgraph embedding as the query vector ("Content
// based News Recommendation via Shortest Entity Distance over Knowledge
// Graphs" ranks by entity-graph distance; NewsLink's BON leg is the same
// signal in Equation 3's fusion frame, so Related is a pure-BON (β = 1)
// search whose query embedding is read from the segment instead of
// computed from text). Both BON legs are supported: the float node-postings
// traversal and, under WithQuantizedEmbeddings, the int8 signature scan.

// RelatedQuery is one related-news request for RelatedContext. DocID and K
// are required; zero values of the remaining fields select the engine's
// defaults, exactly as in Query.
type RelatedQuery struct {
	// DocID is the document whose related news to find (must be live).
	DocID int
	// K is the number of results to return (required, > 0).
	K int
	// PoolDepth overrides Config.PoolDepth for this request (0 = engine
	// default), with the same clamping as Query.PoolDepth.
	PoolDepth int
	// After/Before/Entities filter candidates exactly as in Query. The
	// source document itself is always excluded.
	After    int64
	Before   int64
	Entities []string
}

// Related returns the k documents most related to docID by subgraph
// (BON) similarity. It is RelatedContext with a background context and
// default parameters.
func (e *Engine) Related(docID, k int) ([]Result, error) {
	return e.RelatedContext(context.Background(), RelatedQuery{DocID: docID, K: k})
}

// RelatedContext executes one related-news request. The source document's
// stored BON embedding is the query vector; results are ranked by the
// engine's BON scorer (quantized or float, matching the configured leg),
// max-normalized into (0,1] like every other ranking, and never include
// the source document. A tombstoned or never-added DocID returns
// ErrUnknownDoc; a document that embedded to nothing has no graph
// neighbourhood and returns empty results. Unlike fused search there is
// no BOW leg to degrade to, so retrieval errors fail the request.
//
// When ctx carries a trace (obs.WithTrace), the BON retrieval stage
// records its span with the usual pruning attributes.
func (e *Engine) RelatedContext(ctx context.Context, q RelatedQuery) ([]Result, error) {
	out, err := e.relatedContext(ctx, q)
	e.met.relateds.Inc()
	if err != nil {
		e.met.relatedErrors.Inc()
	}
	return out, err
}

func (e *Engine) relatedContext(ctx context.Context, q RelatedQuery) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if q.K <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrInvalidK, q.K)
	}
	snap, err := e.acquire()
	if err != nil {
		return nil, err
	}
	pos, err := e.lookup(snap, q.DocID)
	if err != nil {
		return nil, err
	}
	emb := snap.embedding(pos)
	if emb == nil || len(emb.Counts) == 0 {
		return nil, nil
	}
	pool := q.PoolDepth
	if pool <= 0 {
		pool = e.cfg.PoolDepth
	}
	if pool < q.K {
		pool = q.K
	}
	if n := snap.numLive(); pool > n {
		pool = n
	}
	// The filter always exists here: self-exclusion is its own clause, so
	// the source document can never rank against itself even when no
	// temporal or entity clause was requested.
	flt := e.compileFilter(e.Graph(), snap, q.After, q.Before, q.Entities, pos)
	sp := obs.FromContext(ctx).Start(obs.StageBON)
	var bon []search.Hit
	var st search.RetrievalStats
	if e.opts.quantizedEmb {
		bon, st, err = quantTopK(ctx, snap, docSignature(emb), pool, flt)
	} else {
		nq := make(search.Query, len(emb.Counts))
		for n, c := range emb.Counts {
			nq[nodeTerm(n)] = float64(c)
		}
		node := index.NewFiltered(snap.node, flt)
		bonScorer := search.NewBM25(node)
		bonScorer.B = 0
		bonScorer.K1 = 0.4
		bon, st, err = topKAuto(ctx, node, bonScorer, nq, pool)
	}
	e.met.blocksObserve(st)
	d := sp.End(retrievalAttrs(len(bon), st)...)
	e.met.stageObserve(obs.StageBON, d)
	if err != nil {
		return nil, err
	}
	// β = 1 fusion is exactly the documented normalization of a pure-BON
	// ranking: clip(normalize(bon), k).
	fused := search.Fuse(nil, bon, 1, q.K)
	out := make([]Result, len(fused))
	for i, h := range fused {
		doc := snap.doc(int(h.Doc))
		out[i] = Result{ID: doc.ID, Title: doc.Title, Score: h.Score}
	}
	return out, nil
}
