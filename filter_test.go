package newslink

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"newslink/internal/corpus"
	"newslink/internal/index"
	"newslink/internal/kg"
	"newslink/internal/search"
)

// filterFixture builds a multi-segment engine over a timestamped generated
// corpus with tombstones in distinct segments — the corpus shape every
// DocFilter property below runs against. Returns the engine, the world
// (for entity labels) and the articles (for timestamps and IDs).
func filterFixture(t testing.TB, opts ...Option) (*Engine, *kg.World, []corpus.Article) {
	t.Helper()
	w := kg.Generate(kg.DefaultConfig(19))
	arts := corpus.Generate(w, corpus.CNNLike(), 90, 19)
	e := New(w.Graph, append([]Option{DefaultConfig()}, opts...)...)
	for i, a := range arts {
		if err := e.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text, Time: a.Time}); err != nil {
			t.Fatal(err)
		}
		switch i + 1 {
		case 30:
			if err := e.Build(); err != nil {
				t.Fatal(err)
			}
		case 60, 90:
			e.Refresh()
		}
	}
	for _, id := range []int{arts[5].ID, arts[40].ID, arts[70].ID} {
		if err := e.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { e.Close() })
	return e, w, arts
}

// filterCases enumerates the filter-clause combinations of one fixture:
// tombstones alone (always present), each temporal bound, a closed
// window, an entity facet, and their compositions.
func filterCases(w *kg.World, arts []corpus.Article) map[string]Query {
	label := w.Graph.Label(w.Events[0].Participants[0])
	mid := arts[len(arts)/2].Time
	late := arts[3*len(arts)/4].Time
	return map[string]Query{
		"unfiltered":   {},
		"after":        {After: mid},
		"before":       {Before: mid},
		"window":       {After: mid, Before: late},
		"entity":       {Entities: []string{label}},
		"entity+after": {After: mid, Entities: []string{label}},
		"empty-window": {After: late, Before: mid},
	}
}

// sameResults compares rankings exactly by document and order, and scores
// within float tolerance (separate traversals may accumulate in different
// orders, so last-ulp differences are expected).
func sameResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Title != b[i].Title || a[i].Snippet != b[i].Snippet ||
			math.Abs(a[i].Score-b[i].Score) > 1e-9 {
			return false
		}
	}
	return true
}

// bruteForceSearch replicates searchContext with exact TAAT traversals
// (search.TopK) over the same composed-filter sources: the reference
// ranking the block-max pipeline must reproduce for every filter
// combination. Scorers read the unfiltered statistics, exactly as the
// engine's filtered-statistics semantics specify.
func bruteForceSearch(t *testing.T, e *Engine, q Query) []Result {
	t.Helper()
	ctx := context.Background()
	snap, err := e.acquire()
	if err != nil {
		t.Fatal(err)
	}
	beta := e.cfg.Beta
	if q.Beta != nil {
		beta = *q.Beta
	}
	pool := q.PoolDepth
	if pool <= 0 {
		pool = e.cfg.PoolDepth
	}
	if pool < q.K {
		pool = q.K
	}
	if n := snap.numLive(); pool > n {
		pool = n
	}
	qEmb, qTerms, err := e.analyzeQuery(ctx, q.Text)
	if err != nil {
		t.Fatal(err)
	}
	flt := e.compileFilter(e.Graph(), snap, q.After, q.Before, q.Entities, -1)
	text, node := index.Source(snap.text), index.Source(snap.node)
	if flt != nil {
		text = index.NewFiltered(text, flt)
		node = index.NewFiltered(node, flt)
	}
	var bow, bon []search.Hit
	if beta < 1 {
		bow = search.TopK(text, search.NewBM25(text), search.NewQuery(qTerms), pool)
	}
	if beta > 0 && qEmb != nil {
		nq := make(search.Query, len(qEmb.Counts))
		for n, c := range qEmb.Counts {
			nq[nodeTerm(n)] = float64(c)
		}
		sc := search.NewBM25(node)
		sc.B = 0
		sc.K1 = 0.4
		bon = search.TopK(node, sc, nq, pool)
	}
	fused := search.Fuse(bow, bon, beta, q.K)
	out := make([]Result, len(fused))
	for i, h := range fused {
		doc := snap.doc(int(h.Doc))
		out[i] = Result{ID: doc.ID, Title: doc.Title, Score: h.Score, Snippet: snippet(doc.Text, qTerms)}
	}
	return out
}

var filterQueries = []string{
	"clashes near the border",
	"ceasefire talks resume",
	"minister parliament vote",
	"xyzzy nosuchterm anywhere",
}

// TestFilteredSearchMatchesBruteForce: the filtered block-max pipeline
// must be rank- and score-identical to brute-force-filtered TAAT across
// tombstones × time-range × entity facets, on the in-memory engine and on
// a reloaded (snapshot v5) copy of it.
func TestFilteredSearchMatchesBruteForce(t *testing.T) {
	e, w, arts := filterFixture(t)
	dir := t.TempDir()
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Load(dir, w.Graph)
	if err != nil {
		t.Fatal(err)
	}
	defer reloaded.Close()
	for name, base := range filterCases(w, arts) {
		for _, qText := range filterQueries {
			for _, k := range []int{1, 5, 100} {
				q := base
				q.Text, q.K = qText, k
				want := bruteForceSearch(t, e, q)
				for engName, eng := range map[string]*Engine{"memory": e, "reloaded": reloaded} {
					got, err := eng.SearchContext(context.Background(), q)
					if err != nil {
						t.Fatal(err)
					}
					if !sameResults(got, want) {
						t.Fatalf("%s/%s q=%q k=%d: filtered block-max != brute-force TAAT\n%v\nvs\n%v",
							name, engName, qText, k, got, want)
					}
				}
			}
		}
	}
}

// TestFilteredShardedTraversalAgrees runs the sharded block-max traversal
// directly over the engine's composed-filter sources and compares it to
// exact TAAT — the multi-core leg of the same identity, independent of
// GOMAXPROCS and corpus-size routing.
func TestFilteredShardedTraversalAgrees(t *testing.T) {
	e, w, arts := filterFixture(t)
	snap, err := e.acquire()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for name, q := range filterCases(w, arts) {
		flt := e.compileFilter(e.Graph(), snap, q.After, q.Before, q.Entities, -1)
		src := index.Source(snap.text)
		if flt != nil {
			src = index.NewFiltered(src, flt)
		}
		scorer := search.NewBM25(src)
		for _, qText := range filterQueries {
			_, terms, err := e.analyzeQuery(ctx, qText)
			if err != nil {
				t.Fatal(err)
			}
			tq := search.NewQuery(terms)
			for _, k := range []int{1, 10, snap.numDocs} {
				want := search.TopK(src, scorer, tq, k)
				got, _, err := search.TopKBlockMaxShardedStats(ctx, src, scorer, tq, k, 4)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s q=%q k=%d: sharded returned %d hits, TAAT %d", name, qText, k, len(got), len(want))
				}
				for i := range got {
					if got[i].Doc != want[i].Doc || math.Abs(got[i].Score-want[i].Score) > 1e-9 {
						t.Fatalf("%s q=%q k=%d: sharded filtered block-max != TAAT\n%v\nvs\n%v", name, qText, k, got, want)
					}
				}
			}
		}
	}
}

// TestFilteredResultsRespectPredicate: every filtered result must be
// live, inside the requested window, and carry every requested entity in
// its stored embedding; an unresolvable label matches nothing; adding a
// second facet can only shrink the result set.
func TestFilteredResultsRespectPredicate(t *testing.T) {
	e, w, arts := filterFixture(t)
	snap, err := e.acquire()
	if err != nil {
		t.Fatal(err)
	}
	dead := map[int]bool{arts[5].ID: true, arts[40].ID: true, arts[70].ID: true}
	label := w.Graph.Label(w.Events[0].Participants[0])
	labelNodes := map[kg.NodeID]bool{}
	for _, n := range w.Graph.Lookup(kg.Fold(label)) {
		labelNodes[n] = true
	}
	// Event 0's coverage sits at the front of the generated corpus, so a
	// window over the first half keeps the facet and the bounds overlapping.
	lo, hi := arts[0].Time, arts[len(arts)/2].Time
	q := Query{Text: "clashes near the border", K: 90,
		After: lo, Before: hi, Entities: []string{label}}
	res, err := e.SearchContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("filtered query matched nothing; fixture or facet resolution broken")
	}
	for _, r := range res {
		if dead[r.ID] {
			t.Fatalf("tombstoned doc %d surfaced through a filtered search", r.ID)
		}
		if tm := arts[r.ID].Time; tm < lo || tm > hi {
			t.Fatalf("doc %d time %d outside window [%d,%d]", r.ID, tm, lo, hi)
		}
		pos, err := e.lookup(snap, r.ID)
		if err != nil {
			t.Fatal(err)
		}
		emb := snap.embedding(pos)
		if emb == nil {
			t.Fatalf("doc %d passed the entity facet without an embedding", r.ID)
		}
		found := false
		for n := range emb.Counts {
			if labelNodes[n] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("doc %d passed the %q facet without the entity in its embedding", r.ID, label)
		}
	}
	// A second conjunctive facet can only shrink the set.
	q2 := q
	q2.Entities = append([]string{label}, w.Graph.Label(w.Events[0].Participants[1]))
	res2, err := e.SearchContext(context.Background(), q2)
	if err != nil {
		t.Fatal(err)
	}
	in := map[int]bool{}
	for _, r := range res {
		in[r.ID] = true
	}
	for _, r := range res2 {
		if !in[r.ID] {
			t.Fatalf("conjunctive facet admitted doc %d the single facet rejected", r.ID)
		}
	}
	// An unresolvable label must match nothing, not everything.
	res3, err := e.SearchContext(context.Background(),
		Query{Text: q.Text, K: 10, Entities: []string{"No Such Entity Anywhere"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res3) != 0 {
		t.Fatalf("unresolvable entity label matched %d documents", len(res3))
	}
}

// TestFilteredExplain: an explanation honours the request's filters — a
// document outside the window or tombstoned is ErrUnknownDoc, one inside
// explains exactly as without filters.
func TestFilteredExplain(t *testing.T) {
	e, _, arts := filterFixture(t)
	ctx := context.Background()
	const qText = "clashes near the border"
	inWindow := arts[10]
	if _, err := e.ExplainQueryContext(ctx, Query{Text: qText, Before: arts[20].Time}, inWindow.ID, 3); err != nil {
		t.Fatalf("in-window explain failed: %v", err)
	}
	// Filtered and unfiltered explanations of a passing doc are identical.
	plain, err := e.ExplainContext(ctx, qText, inWindow.ID, 3)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := e.ExplainQueryContext(ctx, Query{Text: qText, Before: arts[20].Time}, inWindow.ID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, filtered) {
		t.Fatal("filters changed the explanation of a document that passes them")
	}
	// Outside the window: unknown, exactly like a tombstone.
	if _, err := e.ExplainQueryContext(ctx, Query{Text: qText, After: arts[50].Time}, inWindow.ID, 3); !errors.Is(err, ErrUnknownDoc) {
		t.Fatalf("out-of-window explain returned %v, want ErrUnknownDoc", err)
	}
	if _, err := e.ExplainQueryContext(ctx, Query{Text: qText, Before: arts[20].Time}, arts[5].ID, 3); !errors.Is(err, ErrUnknownDoc) {
		t.Fatalf("tombstoned filtered explain returned %v, want ErrUnknownDoc", err)
	}
	// Never out of range: an ID beyond the corpus stays unknown under filters.
	if _, err := e.ExplainQueryContext(ctx, Query{Text: qText, After: 1}, 1<<30, 3); !errors.Is(err, ErrUnknownDoc) {
		t.Fatalf("out-of-range filtered explain returned %v, want ErrUnknownDoc", err)
	}
}

// bruteForceRelated replicates relatedContext's float leg with exact TAAT:
// the stored embedding becomes the node query, scored over the
// self-excluding composed filter, normalized as a pure-BON ranking.
func bruteForceRelated(t *testing.T, e *Engine, q RelatedQuery) []Result {
	t.Helper()
	snap, err := e.acquire()
	if err != nil {
		t.Fatal(err)
	}
	pos, err := e.lookup(snap, q.DocID)
	if err != nil {
		t.Fatal(err)
	}
	emb := snap.embedding(pos)
	if emb == nil || len(emb.Counts) == 0 {
		return nil
	}
	pool := q.PoolDepth
	if pool <= 0 {
		pool = e.cfg.PoolDepth
	}
	if pool < q.K {
		pool = q.K
	}
	if n := snap.numLive(); pool > n {
		pool = n
	}
	flt := e.compileFilter(e.Graph(), snap, q.After, q.Before, q.Entities, pos)
	node := index.NewFiltered(snap.node, flt)
	nq := make(search.Query, len(emb.Counts))
	for n, c := range emb.Counts {
		nq[nodeTerm(n)] = float64(c)
	}
	sc := search.NewBM25(node)
	sc.B = 0
	sc.K1 = 0.4
	bon := search.TopK(node, sc, nq, pool)
	fused := search.Fuse(nil, bon, 1, q.K)
	out := make([]Result, len(fused))
	for i, h := range fused {
		doc := snap.doc(int(h.Doc))
		out[i] = Result{ID: doc.ID, Title: doc.Title, Score: h.Score}
	}
	return out
}

// TestRelatedMatchesBruteForce: the float-leg Related ranking equals the
// exact TAAT reference for unfiltered and filtered requests.
func TestRelatedMatchesBruteForce(t *testing.T) {
	e, w, arts := filterFixture(t)
	label := w.Graph.Label(w.Events[0].Participants[0])
	reqs := []RelatedQuery{
		{DocID: arts[0].ID, K: 10},
		{DocID: arts[12].ID, K: 5, After: arts[20].Time},
		{DocID: arts[33].ID, K: 90, Entities: []string{label}},
		{DocID: arts[60].ID, K: 3, After: arts[10].Time, Before: arts[80].Time},
	}
	for _, q := range reqs {
		want := bruteForceRelated(t, e, q)
		got, err := e.RelatedContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResults(got, want) {
			t.Fatalf("Related(%+v) != brute-force TAAT\n%v\nvs\n%v", q, got, want)
		}
	}
}

// TestRelatedSemantics: self-exclusion, error contract, and the
// filtered-subsequence property on both BON legs (float and quantized).
// With an exhaustive pool the filtered ranking must be exactly the
// unfiltered ranking minus the filtered documents (normalization rescales
// scores but never reorders a pure-BON ranking).
func TestRelatedSemantics(t *testing.T) {
	for _, leg := range []struct {
		name string
		opts []Option
	}{
		{"float", nil},
		{"quantized", []Option{WithQuantizedEmbeddings()}},
	} {
		t.Run(leg.name, func(t *testing.T) {
			e, _, arts := filterFixture(t, leg.opts...)
			snap, err := e.acquire()
			if err != nil {
				t.Fatal(err)
			}
			src := arts[7]
			full, err := e.RelatedContext(context.Background(), RelatedQuery{DocID: src.ID, K: 90, PoolDepth: 90})
			if err != nil {
				t.Fatal(err)
			}
			if len(full) == 0 {
				t.Fatal("no related documents for an event article")
			}
			for _, r := range full {
				if r.ID == src.ID {
					t.Fatal("Related returned the source document")
				}
			}
			for i := 1; i < len(full); i++ {
				if full[i].Score > full[i-1].Score {
					t.Fatal("related results not sorted by score")
				}
			}
			// Filtered = unfiltered subsequence under the predicate.
			mid, late := arts[len(arts)/2].Time, arts[3*len(arts)/4].Time
			filtered, err := e.RelatedContext(context.Background(),
				RelatedQuery{DocID: src.ID, K: 90, PoolDepth: 90, After: mid, Before: late})
			if err != nil {
				t.Fatal(err)
			}
			var wantIDs []int
			for _, r := range full {
				if tm := arts[r.ID].Time; tm >= mid && tm <= late {
					wantIDs = append(wantIDs, r.ID)
				}
			}
			gotIDs := make([]int, len(filtered))
			for i, r := range filtered {
				gotIDs[i] = r.ID
			}
			if !reflect.DeepEqual(gotIDs, wantIDs) {
				t.Fatalf("filtered related IDs %v, want unfiltered-minus-filtered %v", gotIDs, wantIDs)
			}
			// Error contract.
			if _, err := e.Related(arts[5].ID, 3); !errors.Is(err, ErrUnknownDoc) {
				t.Fatalf("tombstoned source returned %v, want ErrUnknownDoc", err)
			}
			if _, err := e.Related(1<<30, 3); !errors.Is(err, ErrUnknownDoc) {
				t.Fatalf("unknown source returned %v, want ErrUnknownDoc", err)
			}
			if _, err := e.Related(arts[0].ID, 0); !errors.Is(err, ErrInvalidK) {
				t.Fatalf("k=0 returned %v, want ErrInvalidK", err)
			}
			// A document that embedded to nothing relates to nothing.
			for pos := 0; pos < snap.numDocs; pos++ {
				if snap.embedding(pos) != nil {
					continue
				}
				doc := snap.doc(pos)
				res, err := e.Related(doc.ID, 5)
				if err != nil || len(res) != 0 {
					t.Fatalf("embedding-less doc %d: got %v, %v; want empty, nil", doc.ID, res, err)
				}
				break
			}
		})
	}
}

// TestWALTimestampBackCompat: records written before the timestamp existed
// (no trailing varint) decode with Time 0; new records roundtrip it.
func TestWALTimestampBackCompat(t *testing.T) {
	doc := Document{ID: 7, Title: "t", Text: "body text", Time: 1600000000}
	op, got, err := decodeWALOp(encodeWALOp(walOpAdd, doc))
	if err != nil || op != walOpAdd || !reflect.DeepEqual(got, doc) {
		t.Fatalf("roundtrip: op=%d doc=%+v err=%v", op, got, err)
	}
	// Hand-craft the pre-timestamp record layout: it simply ends at the text.
	old := encodeWALOp(walOpAdd, Document{ID: 7, Title: "t", Text: "body text"})
	old = old[:len(old)-1] // drop the encoded zero timestamp byte
	op, got, err = decodeWALOp(old)
	if err != nil || op != walOpAdd {
		t.Fatalf("old record: op=%d err=%v", op, err)
	}
	if got.Time != 0 || got.ID != 7 || got.Text != "body text" {
		t.Fatalf("old record decoded to %+v, want Time 0", got)
	}
}

// TestSnapshotV4BackCompat: a v4 snapshot (no time column) loads into the
// current engine with every document untimestamped, while pre-v4 versions
// stay rejected with ErrSnapshotVersion.
func TestSnapshotV4BackCompat(t *testing.T) {
	e, w, _ := filterFixture(t)
	dir := t.TempDir()
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "meta.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	var version int
	if err := json.Unmarshal(m["version"], &version); err != nil {
		t.Fatal(err)
	}
	if version != 5 {
		t.Fatalf("saved snapshot version %d, want 5", version)
	}
	// Rewrite the manifest the way a v4 writer would have: version 4 and
	// no Time keys in the document lists. Binary artifacts are
	// format-identical across v4 and v5, so they stay untouched.
	var segs []map[string]json.RawMessage
	if err := json.Unmarshal(m["segments"], &segs); err != nil {
		t.Fatal(err)
	}
	for _, sm := range segs {
		var docs []map[string]json.RawMessage
		if err := json.Unmarshal(sm["docs"], &docs); err != nil {
			t.Fatal(err)
		}
		for _, d := range docs {
			delete(d, "Time")
		}
		raw, err := json.Marshal(docs)
		if err != nil {
			t.Fatal(err)
		}
		sm["docs"] = raw
	}
	rawSegs, err := json.Marshal(segs)
	if err != nil {
		t.Fatal(err)
	}
	m["segments"] = rawSegs
	m["version"] = json.RawMessage("4")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err != nil {
		t.Fatalf("v4 manifest rejected: %v", err)
	}
	loaded, err := Load(dir, w.Graph)
	if err != nil {
		t.Fatalf("v4 snapshot rejected: %v", err)
	}
	defer loaded.Close()
	// Every document is untimestamped, so any After bound excludes all.
	res, err := loaded.SearchContext(context.Background(),
		Query{Text: "clashes near the border", K: 10, After: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("After bound matched %d untimestamped v4 documents", len(res))
	}
	if res, err := loaded.SearchContext(context.Background(),
		Query{Text: "clashes near the border", K: 10, Before: 1}); err != nil || len(res) == 0 {
		t.Fatalf("Before bound over untimestamped docs: %d results, %v", len(res), err)
	}
	// Pre-v4 stays outside the compatibility window.
	m["version"] = json.RawMessage("3")
	out, err = json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, w.Graph); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("v3 load returned %v, want ErrSnapshotVersion", err)
	}
	if _, err := ReadManifest(dir); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("v3 manifest returned %v, want ErrSnapshotVersion", err)
	}
}
